// The scalar-vs-bulk differential battery: every observable artifact of a
// monitoring run — expected bitstrings, verdicts, wire SessionOutcomes,
// dump_state() fingerprints, Prometheus exposition — must be bit-identical
// with bulk execution on and off, across a grid of population sizes
// (straddling the 64-tag bitmap word, up to 10^5), protocols (TRP, UTRP,
// multi-round), seeds, and fault scripts.
//
// One deliberate exception: the rfidmon_bulk_slots_total family counts work
// done BY the bulk kernels, so it necessarily differs between modes; the
// exposition comparison strips rfidmon_bulk_ lines and keeps everything
// else (including the expected-cache counters, which are mode-independent).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "obs/expose.h"
#include "obs/metrics.h"
#include "protocol/multi_round.h"
#include "protocol/trp.h"
#include "protocol/utrp.h"
#include "server/inventory_server.h"
#include "sim/event_queue.h"
#include "storage/server_state.h"
#include "tag/tag_set.h"
#include "util/random.h"
#include "wire/session.h"

namespace {

using namespace rfid;

const std::size_t kGrid[] = {1, 2, 63, 64, 65, 1000, 100000};

/// Tolerance scaled so Eq. (2) frames stay sane across the whole grid.
std::uint64_t tolerance_for(std::size_t n) { return n < 10 ? 0 : n / 10; }

std::string strip_bulk_families(const std::string& exposition) {
  std::istringstream in(exposition);
  std::string line, out;
  while (std::getline(in, line)) {
    if (line.find("rfidmon_bulk_") != std::string::npos) continue;
    out += line;
    out += '\n';
  }
  return out;
}

void expect_verdicts_equal(const protocol::Verdict& a,
                           const protocol::Verdict& b) {
  EXPECT_EQ(a.intact, b.intact);
  EXPECT_EQ(a.mismatched_slots, b.mismatched_slots);
  if (!a.intact && !b.intact) {
    EXPECT_EQ(a.first_mismatch_slot, b.first_mismatch_slot);
  }
  EXPECT_EQ(a.deadline_met, b.deadline_met);
}

void expect_outcomes_equal(const wire::SessionOutcome& a,
                           const wire::SessionOutcome& b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failure, b.failure);
  EXPECT_EQ(a.rounds_completed, b.rounds_completed);
  ASSERT_EQ(a.round_failures.size(), b.round_failures.size());
  for (std::size_t i = 0; i < a.round_failures.size(); ++i) {
    EXPECT_EQ(a.round_failures[i].round, b.round_failures[i].round);
    EXPECT_EQ(a.round_failures[i].reason, b.round_failures[i].reason);
  }
  ASSERT_EQ(a.verdicts.size(), b.verdicts.size());
  for (std::size_t i = 0; i < a.verdicts.size(); ++i) {
    expect_verdicts_equal(a.verdicts[i], b.verdicts[i]);
  }
  ASSERT_EQ(a.reported.size(), b.reported.size());
  for (std::size_t i = 0; i < a.reported.size(); ++i) {
    EXPECT_EQ(a.reported[i], b.reported[i]);
  }
  EXPECT_EQ(a.frames_sent, b.frames_sent);
  EXPECT_EQ(a.frames_dropped, b.frames_dropped);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.finished_at_us, b.finished_at_us);
  EXPECT_EQ(a.corrupt_frames_dropped, b.corrupt_frames_dropped);
  EXPECT_EQ(a.burst_frames_dropped, b.burst_frames_dropped);
  EXPECT_EQ(a.frames_duplicated, b.frames_duplicated);
  EXPECT_EQ(a.reader_crashes, b.reader_crashes);
}

// ----------------------------------------------------- protocol engines ----

TEST(ColumnarDiff, TrpServerBitIdenticalAcrossGrid) {
  for (const std::size_t n : kGrid) {
    util::Rng rng(util::derive_seed(100, n));
    const tag::TagSet set = tag::TagSet::make_random(n, rng);
    const protocol::MonitoringPolicy policy{tolerance_for(n), 0.9};
    protocol::TrpServer bulk(set.ids(), policy);
    protocol::TrpServer scalar(set.ids(), policy);
    scalar.set_bulk_mode(false);
    ASSERT_TRUE(bulk.bulk_mode());
    ASSERT_FALSE(scalar.bulk_mode());

    for (int round = 0; round < 3; ++round) {
      const protocol::TrpChallenge c = bulk.issue_challenge(rng);
      const bits::Bitstring eb = bulk.expected_bitstring(c);
      const bits::Bitstring es = scalar.expected_bitstring(c);
      ASSERT_EQ(eb, es) << "n=" << n << " round=" << round;

      // Honest report, then a perturbed one: verdicts must agree bit for
      // bit, including the first-mismatch slot.
      expect_verdicts_equal(bulk.verify(c, eb), scalar.verify(c, eb));
      bits::Bitstring perturbed = eb;
      perturbed.set(c.frame_size / 2, !perturbed.test(c.frame_size / 2));
      expect_verdicts_equal(bulk.verify(c, perturbed),
                            scalar.verify(c, perturbed));
    }
  }
}

TEST(ColumnarDiff, UtrpServerBitIdenticalWithCommits) {
  // UTRP's walk is O(n^2) in total hash work by design (every re-seed
  // re-hashes the remaining active tags), so the grid caps at 10^3 here.
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{63},
                              std::size_t{64}, std::size_t{65},
                              std::size_t{1000}}) {
    util::Rng rng(util::derive_seed(200, n));
    const tag::TagSet set = tag::TagSet::make_random(n, rng);
    const protocol::MonitoringPolicy policy{tolerance_for(n), 0.9};
    protocol::UtrpServer bulk(set, policy, 20);
    protocol::UtrpServer scalar(set, policy, 20);
    scalar.set_bulk_mode(false);

    tag::TagSet present_bulk = set;
    tag::TagSet present_scalar = set;
    const protocol::UtrpReader reader;
    for (int round = 0; round < 3; ++round) {
      const protocol::UtrpChallenge c = bulk.issue_challenge(rng);
      ASSERT_EQ(bulk.expected_bitstring(c), scalar.expected_bitstring(c))
          << "n=" << n << " round=" << round;

      const auto scan_b = reader.scan(present_bulk.tags(), c);
      const auto scan_s = reader.scan(present_scalar.tags(), c);
      ASSERT_EQ(scan_b.bitstring, scan_s.bitstring);

      const protocol::Verdict vb = bulk.verify(c, scan_b.bitstring);
      const protocol::Verdict vs = scalar.verify(c, scan_s.bitstring);
      expect_verdicts_equal(vb, vs);
      // Commit advances the mirror counters: after this the NEXT round's
      // expectation depends on the walk having replayed identically.
      bulk.commit_round(c, vb);
      scalar.commit_round(c, vs);
      ASSERT_EQ(bulk.needs_resync(), scalar.needs_resync());
      const auto mb = bulk.mirror();
      const auto ms = scalar.mirror();
      ASSERT_EQ(mb.size(), ms.size());
      for (std::size_t i = 0; i < mb.size(); ++i) {
        ASSERT_EQ(mb[i].id(), ms[i].id()) << "n=" << n << " i=" << i;
        ASSERT_EQ(mb[i].counter(), ms[i].counter());
        ASSERT_EQ(mb[i].silenced(), ms[i].silenced());
      }
      present_bulk.begin_round();
      present_scalar.begin_round();
    }
  }
}

TEST(ColumnarDiff, MultiRoundCampaignsBitIdentical) {
  for (const std::size_t n : {std::size_t{100}, std::size_t{1000}}) {
    util::Rng rng_a(util::derive_seed(300, n));
    util::Rng rng_b(util::derive_seed(300, n));
    tag::TagSet set = tag::TagSet::make_random(n, rng_a);
    (void)tag::TagSet::make_random(n, rng_b);  // keep the streams aligned
    const protocol::MonitoringPolicy policy{0, 0.99};
    protocol::MultiRoundTrpServer bulk(set.ids(), policy, 4);
    protocol::MultiRoundTrpServer scalar(set.ids(), policy, 4);
    scalar.set_bulk_mode(false);
    ASSERT_FALSE(scalar.bulk_mode());

    const tag::TagSet stolen = set.steal_random(1, rng_a);
    (void)rng_b();  // steal_random consumed rng_a; realign
    const auto challenges_a = bulk.issue_challenges(rng_a);

    const protocol::TrpReader reader;
    std::vector<bits::Bitstring> reported;
    for (const auto& c : challenges_a) {
      reported.push_back(reader.scan(set.tags(), c, rng_a));
    }
    expect_verdicts_equal(bulk.verify(challenges_a, reported),
                          scalar.verify(challenges_a, reported));
  }
}

// ------------------------------------ wire sessions under fault scripts ----

fault::FaultPlan noisy_plan(std::uint64_t seed) {
  fault::FaultPlan plan;
  plan.seed = seed;
  plan.burst.p_enter_bad = 0.05;
  plan.burst.p_exit_bad = 0.5;
  plan.corrupt_prob = 0.02;
  plan.duplicate_prob = 0.05;
  plan.reorder_prob = 0.03;
  return plan;
}

TEST(ColumnarDiff, TrpWireSessionsMatchUnderFaults) {
  for (const std::size_t n : {std::size_t{1}, std::size_t{63},
                              std::size_t{65}, std::size_t{1000}}) {
    for (const bool faulty : {false, true}) {
      const fault::FaultPlan plan = noisy_plan(util::derive_seed(7, n));
      util::Rng rng_theft(util::derive_seed(400, n));
      tag::TagSet set = tag::TagSet::make_random(n, rng_theft);
      if (n > 10) (void)set.steal_random(2, rng_theft);

      wire::SessionOutcome outcomes[2];
      for (const bool bulk_on : {true, false}) {
        protocol::TrpServer server(set.ids(),
                                   {tolerance_for(n), 0.9});
        server.set_bulk_mode(bulk_on);
        wire::SessionConfig session;
        session.uplink.drop_prob = 0.1;
        session.downlink.drop_prob = 0.1;
        if (faulty) session.faults = &plan;
        sim::EventQueue queue;
        util::Rng rng(util::derive_seed(500, n));
        outcomes[bulk_on ? 0 : 1] = wire::run_trp_session(
            queue, server, set.tags(), 3, session, rng);
      }
      expect_outcomes_equal(outcomes[0], outcomes[1]);
    }
  }
}

TEST(ColumnarDiff, UtrpWireSessionsMatchUnderFaults) {
  for (const std::size_t n :
       {std::size_t{1}, std::size_t{64}, std::size_t{1000}}) {
    for (const bool faulty : {false, true}) {
      const fault::FaultPlan plan = noisy_plan(util::derive_seed(8, n));
      util::Rng rng_make(util::derive_seed(600, n));
      const tag::TagSet set = tag::TagSet::make_random(n, rng_make);

      wire::SessionOutcome outcomes[2];
      for (const bool bulk_on : {true, false}) {
        protocol::UtrpServer server(set, {tolerance_for(n), 0.9}, 20);
        server.set_bulk_mode(bulk_on);
        tag::TagSet present = set;  // sessions mutate counters
        wire::SessionConfig session;
        session.uplink.drop_prob = 0.05;
        session.downlink.drop_prob = 0.05;
        if (faulty) session.faults = &plan;
        sim::EventQueue queue;
        util::Rng rng(util::derive_seed(700, n));
        outcomes[bulk_on ? 0 : 1] = wire::run_utrp_session(
            queue, server, present.tags(), 2, session, rng);
      }
      expect_outcomes_equal(outcomes[0], outcomes[1]);
    }
  }
}

TEST(ColumnarDiff, TrpSessionAtHundredThousandTags) {
  const std::size_t n = 100000;
  util::Rng rng_make(9100);
  tag::TagSet set = tag::TagSet::make_random(n, rng_make);
  (void)set.steal_random(n / 10 + 5, rng_make);  // beyond tolerance

  wire::SessionOutcome outcomes[2];
  for (const bool bulk_on : {true, false}) {
    protocol::TrpServer server(set.ids(), {tolerance_for(n), 0.9});
    server.set_bulk_mode(bulk_on);
    sim::EventQueue queue;
    util::Rng rng(9200);
    outcomes[bulk_on ? 0 : 1] =
        wire::run_trp_session(queue, server, set.tags(), 2, {}, rng);
  }
  expect_outcomes_equal(outcomes[0], outcomes[1]);
  EXPECT_TRUE(outcomes[0].completed);
}

// ------------- the full InventoryServer, fingerprinted after every step ----

TEST(ColumnarDiff, InventoryServerStateAndExpositionBitIdentical) {
  // Two servers — bulk on and off — driven by the identical operation
  // script with identical RNG streams. After EVERY operation the
  // dump_state() fingerprint and the Prometheus exposition (minus the
  // rfidmon_bulk_ families, which count kernel-internal work) must match.
  obs::MetricsRegistry reg_bulk, reg_scalar;
  server::InventoryServer bulk, scalar;
  bulk.attach_metrics(&reg_bulk);
  scalar.attach_metrics(&reg_scalar);

  util::Rng rng_bulk(4242), rng_scalar(4242);
  const auto check = [&](const char* where) {
    ASSERT_EQ(storage::dump_state(bulk), storage::dump_state(scalar)) << where;
    ASSERT_EQ(strip_bulk_families(obs::render_prometheus(reg_bulk.snapshot())),
              strip_bulk_families(obs::render_prometheus(reg_scalar.snapshot())))
        << where;
  };

  // Enroll one group per protocol, mirrored configs except the bulk knob.
  tag::TagSet trp_tags_b = tag::TagSet::make_random(65, rng_bulk);
  tag::TagSet trp_tags_s = tag::TagSet::make_random(65, rng_scalar);
  server::GroupConfig trp_cfg;
  trp_cfg.name = "aisle";
  trp_cfg.policy = {2, 0.9};
  server::GroupConfig scalar_trp_cfg = trp_cfg;
  scalar_trp_cfg.bulk_mode = false;
  const server::GroupId gt = bulk.enroll(trp_tags_b, trp_cfg);
  const server::GroupId gt2 = scalar.enroll(trp_tags_s, scalar_trp_cfg);
  ASSERT_EQ(gt, gt2);

  tag::TagSet utrp_tags_b = tag::TagSet::make_random(200, rng_bulk);
  tag::TagSet utrp_tags_s = tag::TagSet::make_random(200, rng_scalar);
  server::GroupConfig utrp_cfg;
  utrp_cfg.name = "cage";
  utrp_cfg.policy = {3, 0.9};
  utrp_cfg.protocol = server::ProtocolKind::kUtrp;
  server::GroupConfig scalar_utrp_cfg = utrp_cfg;
  scalar_utrp_cfg.bulk_mode = false;
  const server::GroupId gu = bulk.enroll(utrp_tags_b, utrp_cfg);
  (void)scalar.enroll(utrp_tags_s, scalar_utrp_cfg);
  check("after enroll");

  const protocol::TrpReader trp_reader;
  const protocol::UtrpReader utrp_reader;

  // Honest TRP rounds — including a repeated challenge, which both servers
  // must serve from their expected-bitstring cache identically.
  for (int round = 0; round < 3; ++round) {
    const auto cb = bulk.challenge_trp(gt, rng_bulk);
    const auto cs = scalar.challenge_trp(gt, rng_scalar);
    ASSERT_EQ(cb.r, cs.r);
    expect_verdicts_equal(
        bulk.submit_trp(gt, cb, trp_reader.scan(trp_tags_b.tags(), cb, rng_bulk)),
        scalar.submit_trp(gt, cs,
                          trp_reader.scan(trp_tags_s.tags(), cs, rng_scalar)));
    if (round == 1) {  // replay: second submission of the same challenge
      expect_verdicts_equal(
          bulk.submit_trp(gt, cb,
                          trp_reader.scan(trp_tags_b.tags(), cb, rng_bulk)),
          scalar.submit_trp(gt, cs,
                            trp_reader.scan(trp_tags_s.tags(), cs, rng_scalar)));
    }
    check("after TRP round");
  }

  // Theft beyond tolerance, then a round that should alarm identically.
  (void)trp_tags_b.steal_random(5, rng_bulk);
  (void)trp_tags_s.steal_random(5, rng_scalar);
  {
    const auto cb = bulk.challenge_trp(gt, rng_bulk);
    const auto cs = scalar.challenge_trp(gt, rng_scalar);
    expect_verdicts_equal(
        bulk.submit_trp(gt, cb, trp_reader.scan(trp_tags_b.tags(), cb, rng_bulk)),
        scalar.submit_trp(gt, cs,
                          trp_reader.scan(trp_tags_s.tags(), cs, rng_scalar)));
    check("after theft round");
  }

  // UTRP rounds with commits.
  for (int round = 0; round < 2; ++round) {
    const auto cb = bulk.challenge_utrp(gu, rng_bulk);
    const auto cs = scalar.challenge_utrp(gu, rng_scalar);
    const auto scan_b = utrp_reader.scan(utrp_tags_b.tags(), cb);
    const auto scan_s = utrp_reader.scan(utrp_tags_s.tags(), cs);
    expect_verdicts_equal(bulk.submit_utrp(gu, cb, scan_b.bitstring, true),
                          scalar.submit_utrp(gu, cs, scan_s.bitstring, true));
    utrp_tags_b.begin_round();
    utrp_tags_s.begin_round();
    check("after UTRP round");
  }

  // Re-enrollment (must invalidate the TRP cache in both) and a fresh round.
  bulk.re_enroll(gt, trp_tags_b, trp_cfg);
  scalar.re_enroll(gt, trp_tags_s, scalar_trp_cfg);
  EXPECT_EQ(bulk.expected_cache_entries(), scalar.expected_cache_entries());
  check("after re_enroll");
  {
    const auto cb = bulk.challenge_trp(gt, rng_bulk);
    const auto cs = scalar.challenge_trp(gt, rng_scalar);
    expect_verdicts_equal(
        bulk.submit_trp(gt, cb, trp_reader.scan(trp_tags_b.tags(), cb, rng_bulk)),
        scalar.submit_trp(gt, cs,
                          trp_reader.scan(trp_tags_s.tags(), cs, rng_scalar)));
    check("after post-re_enroll round");
  }

  // UTRP resync and decommission, mirrored.
  bulk.resync(gu, utrp_tags_b);
  scalar.resync(gu, utrp_tags_s);
  check("after resync");
  bulk.decommission(gt);
  scalar.decommission(gt);
  check("after decommission");
}

}  // namespace
