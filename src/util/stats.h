// Streaming statistics for Monte-Carlo experiments.
//
// RunningStat accumulates mean/variance in one pass (Welford's algorithm);
// BinomialProportion summarises detect/miss trials with a normal-approximation
// and a Wilson confidence interval — the quantity plotted in the paper's
// Figures 5 and 7 is exactly such a proportion over 1000 trials.
#pragma once

#include <cstddef>
#include <vector>

namespace rfid::util {

/// One-pass mean / variance / min / max accumulator (Welford).
class RunningStat {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }
  /// Unbiased sample variance; 0 when fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean; 0 when fewer than two samples.
  [[nodiscard]] double stderr_mean() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A two-sided confidence interval [lo, hi].
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
};

/// Success-proportion summary for Bernoulli trials (e.g. detection events).
class BinomialProportion {
 public:
  void add(bool success) noexcept {
    ++n_;
    if (success) ++successes_;
  }

  [[nodiscard]] std::size_t trials() const noexcept { return n_; }
  [[nodiscard]] std::size_t successes() const noexcept { return successes_; }
  [[nodiscard]] double proportion() const noexcept {
    return n_ == 0 ? 0.0 : static_cast<double>(successes_) / static_cast<double>(n_);
  }

  /// Wilson score interval at confidence `z` standard deviations
  /// (z = 1.96 for 95%). Well-behaved near proportions of 0 and 1, unlike
  /// the plain normal interval.
  [[nodiscard]] Interval wilson(double z = 1.96) const noexcept;

 private:
  std::size_t n_ = 0;
  std::size_t successes_ = 0;
};

/// Sample quantile (linear interpolation between order statistics).
/// `q` in [0,1]; the input vector is copied and sorted.
[[nodiscard]] double quantile(std::vector<double> samples, double q);

}  // namespace rfid::util
