// Group planning: sharding one large population across reader zones while
// preserving a global monitoring guarantee.
//
// The paper's server monitors one static set per protocol run, and its
// flexibility claim (Sec. 1) is that groups of any size can be accommodated.
// Real deployments shard for physical reasons — a reader's field covers one
// cage or aisle, not the whole warehouse. The planner answers: given N tags,
// a global tolerance of M missing, confidence α, and a per-zone capacity,
// how should zones and per-zone tolerances be chosen, and what does sharding
// cost?
//
// Guarantee: tolerances are allocated so that Σ m_i = M. If more than M tags
// are missing overall, by pigeonhole at least one zone exceeds its own m_i,
// and that zone's Eq. (2) frame flags it with probability > α. (Detection
// can only be better when the theft spans several zones.)
//
// Cost shape: f(n, m, α) grows sub-linearly in m at fixed n, so splitting a
// set shrinks each zone's n but also its tolerance — the per-zone frames
// do not shrink proportionally and total slots INCREASE with zone count.
// Sharding is a coverage necessity, not an optimization; the planner
// quantifies its price (see bench/ablation_sharding).
#pragma once

#include <cstdint>
#include <vector>

#include "math/detection.h"
#include "tag/columnar.h"
#include "tag/tag_set.h"

namespace rfid::server {

struct PlannerInput {
  std::uint64_t total_tags = 0;       // N
  std::uint64_t total_tolerance = 0;  // M (alert when > M missing overall)
  double alpha = 0.95;
  /// Per-zone capacity (reader coverage); 0 means unlimited (single zone).
  std::uint64_t max_group_size = 0;
  math::EmptySlotModel model = math::EmptySlotModel::kPoissonApprox;
};

struct ZonePlan {
  std::uint64_t tags = 0;        // n_i
  std::uint64_t tolerance = 0;   // m_i
  std::uint32_t frame_size = 0;  // Eq. (2) frame for (n_i, m_i, alpha)
  double detection = 0.0;        // g(n_i, m_i + 1, frame_size)
};

struct GroupPlan {
  std::vector<ZonePlan> zones;
  std::uint64_t total_slots = 0;        // Σ frame sizes
  double worst_zone_detection = 0.0;    // min over zones (the guarantee)
};

/// Plans zones of near-equal size within the capacity, allocates the global
/// tolerance proportionally (Σ m_i = M exactly), and sizes each zone's
/// frame by Eq. (2). Requires total_tolerance + zone_count <= total_tags
/// (every zone must be able to lose m_i + 1 tags).
[[nodiscard]] GroupPlan plan_groups(const PlannerInput& input);

/// Partitions a population into per-zone TagSets matching `plan` — zone i
/// receives the next plan.zones[i].tags tags, in set order (tag state,
/// counters included, is copied unchanged). Requires the population size to
/// equal the plan's total. This is the handoff from planning to execution:
/// the fleet orchestrator scans each returned set with its zone's reader.
[[nodiscard]] std::vector<tag::TagSet> split_by_plan(const tag::TagSet& tags,
                                                     const GroupPlan& plan);

/// The columnar twin of split_by_plan: contiguous column slices, one per
/// zone, with the precomputed slot words carried over instead of re-derived.
/// This is the handoff the fleet uses to seed per-zone TrpServers without a
/// per-tag AoS round trip.
[[nodiscard]] std::vector<tag::ColumnarTagSet> split_columnar_by_plan(
    const tag::ColumnarTagSet& tags, const GroupPlan& plan);

}  // namespace rfid::server
