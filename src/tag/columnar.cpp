#include "tag/columnar.h"

#include <bit>

#include "util/expect.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define RFIDMON_COLUMNAR_SIMD 1
#include <immintrin.h>
#endif

namespace rfid::tag {

namespace {

/// Multiply-shift range reduction, identical to SlotHasher::slot.
[[nodiscard]] constexpr std::uint32_t reduce(std::uint64_t h,
                                             std::uint32_t frame_size) noexcept {
  return static_cast<std::uint32_t>(
      (static_cast<__uint128_t>(h) * frame_size) >> 64);
}

[[nodiscard]] constexpr std::size_t bitmap_words(std::size_t n) noexcept {
  return (n + 63) / 64;
}

/// Runs `body(mix)` with the hash-kind dispatch hoisted to one switch:
/// `mix` is a callable uint64 -> uint64 matching SlotHasher::mix for the
/// hasher's configured kind.
template <class Body>
void with_mixer(const hash::SlotHasher& hasher, Body&& body) {
  switch (hasher.kind()) {
    case hash::HashKind::kFnv1a64:
      body([](std::uint64_t x) noexcept { return hash::fnv1a64_u64(x); });
      return;
    case hash::HashKind::kMurmurFmix64:
      body([](std::uint64_t x) noexcept { return hash::murmur3_fmix64(x); });
      return;
    case hash::HashKind::kSipHash24:
      body([key = hasher.sip_key()](std::uint64_t x) noexcept {
        return hash::siphash24_u64(x, key);
      });
      return;
  }
  body([](std::uint64_t x) noexcept { return hash::murmur3_fmix64(x); });
}

#if defined(RFIDMON_COLUMNAR_SIMD)

// GCC 12's avx512 intrinsics headers trip -Wmaybe-uninitialized when their
// _mm512_undefined_* helpers inline into user code; the values are fully
// overwritten before use (a long-standing GCC false positive).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

// ---------------------------------------------------- SIMD slot kernels ----
//
// Vector twins of the murmur/FNV slot loops, selected at runtime (the
// binary still runs on any x86-64). Every operation below is exact integer
// arithmetic, so the lanes are bit-identical to the scalar reference — the
// property tests in tests/columnar_test.cpp execute whichever path this
// machine dispatches to and compare element-wise against Tag::trp_slot.
// SipHash keeps the scalar loop: its 2x4 ARX rounds vectorize poorly and it
// is the "strongest, slowest" option, not the hot default.
//
// The multiply-shift reduction (h * f) >> 64 is computed without 128-bit
// lanes: with h = h_hi * 2^32 + h_lo and f < 2^32,
//   (h * f) >> 64 == (h_hi * f + ((h_lo * f) >> 32)) >> 32
// exactly (both partial products fit 64 bits; the discarded low half of
// h_lo * f cannot carry into bit 64).

/// out[i] = (murmur3_fmix64(words[i] ^ r) * f) >> 64. Two independent
/// 8-lane streams per step (the fmix chain is serial within a lane group —
/// a second stream fills its multiply latency) plus a ~2 KiB-ahead software
/// prefetch; at n = 10^6 the loop is L3-latency-bound, not compute-bound,
/// and the prefetch is worth more than any extra unrolling.
__attribute__((target("avx512f,avx512dq"))) void trp_slots_murmur_avx512(
    const std::uint64_t* words, std::size_t n, std::uint64_t r,
    std::uint32_t frame_size, std::uint32_t* out) {
  const __m512i vr = _mm512_set1_epi64(static_cast<long long>(r));
  const __m512i k1 =
      _mm512_set1_epi64(static_cast<long long>(0xff51afd7ed558ccdULL));
  const __m512i k2 =
      _mm512_set1_epi64(static_cast<long long>(0xc4ceb9fe1a85ec53ULL));
  const __m512i vf = _mm512_set1_epi64(static_cast<long long>(frame_size));
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __builtin_prefetch(words + i + 256);
    __builtin_prefetch(words + i + 264);
    __builtin_prefetch(out + i + 256, 1);
    __m512i a = _mm512_xor_si512(_mm512_loadu_si512(words + i), vr);
    __m512i b = _mm512_xor_si512(_mm512_loadu_si512(words + i + 8), vr);
    a = _mm512_xor_si512(a, _mm512_srli_epi64(a, 33));
    b = _mm512_xor_si512(b, _mm512_srli_epi64(b, 33));
    a = _mm512_mullo_epi64(a, k1);
    b = _mm512_mullo_epi64(b, k1);
    a = _mm512_xor_si512(a, _mm512_srli_epi64(a, 33));
    b = _mm512_xor_si512(b, _mm512_srli_epi64(b, 33));
    a = _mm512_mullo_epi64(a, k2);
    b = _mm512_mullo_epi64(b, k2);
    a = _mm512_xor_si512(a, _mm512_srli_epi64(a, 33));
    b = _mm512_xor_si512(b, _mm512_srli_epi64(b, 33));
    const __m512i lo_a = _mm512_mul_epu32(a, vf);
    const __m512i hi_a = _mm512_mul_epu32(_mm512_srli_epi64(a, 32), vf);
    const __m512i lo_b = _mm512_mul_epu32(b, vf);
    const __m512i hi_b = _mm512_mul_epu32(_mm512_srli_epi64(b, 32), vf);
    const __m512i slot_a = _mm512_srli_epi64(
        _mm512_add_epi64(hi_a, _mm512_srli_epi64(lo_a, 32)), 32);
    const __m512i slot_b = _mm512_srli_epi64(
        _mm512_add_epi64(hi_b, _mm512_srli_epi64(lo_b, 32)), 32);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm512_cvtepi64_epi32(slot_a));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 8),
                        _mm512_cvtepi64_epi32(slot_b));
  }
  for (; i + 8 <= n; i += 8) {
    __m512i x = _mm512_xor_si512(_mm512_loadu_si512(words + i), vr);
    x = _mm512_xor_si512(x, _mm512_srli_epi64(x, 33));
    x = _mm512_mullo_epi64(x, k1);
    x = _mm512_xor_si512(x, _mm512_srli_epi64(x, 33));
    x = _mm512_mullo_epi64(x, k2);
    x = _mm512_xor_si512(x, _mm512_srli_epi64(x, 33));
    const __m512i lo = _mm512_mul_epu32(x, vf);
    const __m512i hi = _mm512_mul_epu32(_mm512_srli_epi64(x, 32), vf);
    const __m512i slot = _mm512_srli_epi64(
        _mm512_add_epi64(hi, _mm512_srli_epi64(lo, 32)), 32);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm512_cvtepi64_epi32(slot));
  }
  for (; i < n; ++i) {
    out[i] = reduce(hash::murmur3_fmix64(words[i] ^ r), frame_size);
  }
}

/// FNV-1a over the 8 little-endian bytes of words[i] ^ r, then reduce.
__attribute__((target("avx512f,avx512dq"))) void trp_slots_fnv_avx512(
    const std::uint64_t* words, std::size_t n, std::uint64_t r,
    std::uint32_t frame_size, std::uint32_t* out) {
  const __m512i vr = _mm512_set1_epi64(static_cast<long long>(r));
  const __m512i basis =
      _mm512_set1_epi64(static_cast<long long>(hash::kFnv64OffsetBasis));
  const __m512i prime =
      _mm512_set1_epi64(static_cast<long long>(hash::kFnv64Prime));
  const __m512i mask = _mm512_set1_epi64(0xff);
  const __m512i vf = _mm512_set1_epi64(static_cast<long long>(frame_size));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __builtin_prefetch(words + i + 256);
    __builtin_prefetch(out + i + 256, 1);
    __m512i wb = _mm512_xor_si512(_mm512_loadu_si512(words + i), vr);
    __m512i h = basis;
    for (int b = 0; b < 8; ++b) {
      h = _mm512_mullo_epi64(
          _mm512_xor_si512(h, _mm512_and_si512(wb, mask)), prime);
      wb = _mm512_srli_epi64(wb, 8);
    }
    const __m512i lo = _mm512_mul_epu32(h, vf);
    const __m512i hi = _mm512_mul_epu32(_mm512_srli_epi64(h, 32), vf);
    const __m512i slot = _mm512_srli_epi64(
        _mm512_add_epi64(hi, _mm512_srli_epi64(lo, 32)), 32);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm512_cvtepi64_epi32(slot));
  }
  for (; i < n; ++i) {
    out[i] = reduce(hash::fnv1a64_u64(words[i] ^ r), frame_size);
  }
}

/// Low 64 bits of a 64x64 lane multiply on AVX2 (no native vpmullq):
/// a*b mod 2^64 == a_lo*b_lo + ((a_hi*b_lo + a_lo*b_hi) << 32).
__attribute__((target("avx2"), always_inline)) inline __m256i mul64_avx2(
    __m256i a, __m256i b) {
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
                       _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

/// Keep the low 32 bits of each 64-bit lane as 4 packed uint32.
__attribute__((target("avx2"), always_inline)) inline __m128i pack_lo32_avx2(
    __m256i x) {
  const __m256i perm = _mm256_permutevar8x32_epi32(
      x, _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6));
  return _mm256_castsi256_si128(perm);
}

__attribute__((target("avx2"))) void trp_slots_murmur_avx2(
    const std::uint64_t* words, std::size_t n, std::uint64_t r,
    std::uint32_t frame_size, std::uint32_t* out) {
  const __m256i vr = _mm256_set1_epi64x(static_cast<long long>(r));
  const __m256i k1 =
      _mm256_set1_epi64x(static_cast<long long>(0xff51afd7ed558ccdULL));
  const __m256i k2 =
      _mm256_set1_epi64x(static_cast<long long>(0xc4ceb9fe1a85ec53ULL));
  const __m256i vf = _mm256_set1_epi64x(static_cast<long long>(frame_size));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __builtin_prefetch(words + i + 128);
    __builtin_prefetch(out + i + 128, 1);
    __m256i x = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i)), vr);
    x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
    x = mul64_avx2(x, k1);
    x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
    x = mul64_avx2(x, k2);
    x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
    const __m256i lo = _mm256_mul_epu32(x, vf);
    const __m256i hi = _mm256_mul_epu32(_mm256_srli_epi64(x, 32), vf);
    const __m256i slot = _mm256_srli_epi64(
        _mm256_add_epi64(hi, _mm256_srli_epi64(lo, 32)), 32);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     pack_lo32_avx2(slot));
  }
  for (; i < n; ++i) {
    out[i] = reduce(hash::murmur3_fmix64(words[i] ^ r), frame_size);
  }
}

__attribute__((target("avx2"))) void trp_slots_fnv_avx2(
    const std::uint64_t* words, std::size_t n, std::uint64_t r,
    std::uint32_t frame_size, std::uint32_t* out) {
  const __m256i vr = _mm256_set1_epi64x(static_cast<long long>(r));
  const __m256i basis =
      _mm256_set1_epi64x(static_cast<long long>(hash::kFnv64OffsetBasis));
  const __m256i prime =
      _mm256_set1_epi64x(static_cast<long long>(hash::kFnv64Prime));
  const __m256i mask = _mm256_set1_epi64x(0xff);
  const __m256i vf = _mm256_set1_epi64x(static_cast<long long>(frame_size));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __builtin_prefetch(words + i + 128);
    __builtin_prefetch(out + i + 128, 1);
    __m256i wb = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i)), vr);
    __m256i h = basis;
    for (int b = 0; b < 8; ++b) {
      h = mul64_avx2(_mm256_xor_si256(h, _mm256_and_si256(wb, mask)), prime);
      wb = _mm256_srli_epi64(wb, 8);
    }
    const __m256i lo = _mm256_mul_epu32(h, vf);
    const __m256i hi = _mm256_mul_epu32(_mm256_srli_epi64(h, 32), vf);
    const __m256i slot = _mm256_srli_epi64(
        _mm256_add_epi64(hi, _mm256_srli_epi64(lo, 32)), 32);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     pack_lo32_avx2(slot));
  }
  for (; i < n; ++i) {
    out[i] = reduce(hash::fnv1a64_u64(words[i] ^ r), frame_size);
  }
}

using SlotsKernel = void (*)(const std::uint64_t*, std::size_t, std::uint64_t,
                             std::uint32_t, std::uint32_t*);

/// The widest vector kernel this CPU executes for `kind`, or nullptr for
/// "use the scalar loop" (SipHash, or a pre-AVX2 machine).
[[nodiscard]] SlotsKernel pick_slots_kernel(hash::HashKind kind) {
  static const int level = [] {
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512dq")) {
      return 2;
    }
    return __builtin_cpu_supports("avx2") ? 1 : 0;
  }();
  switch (kind) {
    case hash::HashKind::kMurmurFmix64:
      if (level == 2) return &trp_slots_murmur_avx512;
      if (level == 1) return &trp_slots_murmur_avx2;
      return nullptr;
    case hash::HashKind::kFnv1a64:
      if (level == 2) return &trp_slots_fnv_avx512;
      if (level == 1) return &trp_slots_fnv_avx2;
      return nullptr;
    case hash::HashKind::kSipHash24:
      return nullptr;
  }
  return nullptr;
}

#pragma GCC diagnostic pop

#endif  // RFIDMON_COLUMNAR_SIMD

}  // namespace

ColumnarTagSet ColumnarTagSet::from_tags(std::span<const Tag> tags) {
  ColumnarTagSet out;
  const std::size_t n = tags.size();
  out.ids_.reserve(n);
  out.slot_words_.reserve(n);
  out.counters_.reserve(n);
  out.silenced_.assign(bitmap_words(n), 0);
  for (std::size_t i = 0; i < n; ++i) {
    const Tag& t = tags[i];
    out.ids_.push_back(t.id());
    out.slot_words_.push_back(t.id().slot_word());
    out.counters_.push_back(t.counter());
    if (t.silenced()) out.silenced_[i / 64] |= std::uint64_t{1} << (i % 64);
  }
  return out;
}

ColumnarTagSet ColumnarTagSet::from_ids(std::span<const TagId> ids) {
  ColumnarTagSet out;
  const std::size_t n = ids.size();
  out.ids_.assign(ids.begin(), ids.end());
  out.slot_words_.reserve(n);
  for (const TagId& id : ids) out.slot_words_.push_back(id.slot_word());
  out.counters_.assign(n, 0);
  out.silenced_.assign(bitmap_words(n), 0);
  return out;
}

TagSet ColumnarTagSet::to_tag_set() const {
  std::vector<Tag> tags;
  tags.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) {
    Tag t(ids_[i], counters_[i]);
    if (silenced(i)) t.silence();
    tags.push_back(t);
  }
  return TagSet(std::move(tags));
}

std::size_t ColumnarTagSet::silenced_count() const noexcept {
  std::size_t total = 0;
  for (const auto w : silenced_) {
    total += static_cast<std::size_t>(std::popcount(w));
  }
  return total;
}

ColumnarTagSet ColumnarTagSet::slice(std::size_t first, std::size_t count) const {
  RFID_EXPECT(first + count <= size(), "columnar slice out of range");
  ColumnarTagSet out;
  out.ids_.assign(ids_.begin() + static_cast<std::ptrdiff_t>(first),
                  ids_.begin() + static_cast<std::ptrdiff_t>(first + count));
  out.slot_words_.assign(
      slot_words_.begin() + static_cast<std::ptrdiff_t>(first),
      slot_words_.begin() + static_cast<std::ptrdiff_t>(first + count));
  out.counters_.assign(counters_.begin() + static_cast<std::ptrdiff_t>(first),
                       counters_.begin() + static_cast<std::ptrdiff_t>(first + count));
  out.silenced_.assign(bitmap_words(count), 0);
  for (std::size_t i = 0; i < count; ++i) {
    if (silenced(first + i)) out.silenced_[i / 64] |= std::uint64_t{1} << (i % 64);
  }
  return out;
}

void bulk_trp_slots(const hash::SlotHasher& hasher,
                    std::span<const std::uint64_t> slot_words, std::uint64_t r,
                    std::uint32_t frame_size, std::span<std::uint32_t> out) {
  RFID_EXPECT(frame_size >= 1, "frame size must be positive");
  RFID_EXPECT(out.size() == slot_words.size(),
              "output span must cover the population");
#if defined(RFIDMON_COLUMNAR_SIMD)
  if (const SlotsKernel kernel = pick_slots_kernel(hasher.kind())) {
    kernel(slot_words.data(), slot_words.size(), r, frame_size, out.data());
    return;
  }
#endif
  with_mixer(hasher, [&](auto mix) {
    const std::size_t n = slot_words.size();
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = reduce(mix(slot_words[i] ^ r), frame_size);
    }
  });
}

void bulk_utrp_receive_seed(const hash::SlotHasher& hasher, ColumnarTagSet& tags,
                            std::uint64_t r, std::uint32_t frame_size,
                            std::span<std::uint32_t> out) {
  RFID_EXPECT(frame_size >= 1, "frame size must be positive");
  RFID_EXPECT(out.size() == tags.size(),
              "output span must cover the population");
  const std::span<const std::uint64_t> words = tags.slot_words();
  const std::span<const std::uint64_t> silenced = tags.silenced_words();
  const std::span<std::uint64_t> counters = tags.counters();
  with_mixer(hasher, [&](auto mix) {
    const std::size_t n = words.size();
    for (std::size_t base = 0; base < n; base += 64) {
      // One bitmap word covers the next 64 tags; a fully-active word (the
      // common case early in a frame) runs without per-tag branching.
      std::uint64_t active = ~silenced[base / 64];
      const std::size_t limit = (n - base < 64) ? n - base : 64;
      if (limit < 64) active &= (std::uint64_t{1} << limit) - 1;
      while (active != 0) {
        const std::size_t i =
            base + static_cast<std::size_t>(std::countr_zero(active));
        active &= active - 1;
        const std::uint64_t ct = ++counters[i];
        out[i] = reduce(mix(words[i] ^ r ^ ct), frame_size);
      }
    }
  });
}

void bulk_fill_frame(std::span<const std::uint32_t> slots,
                     bits::Bitstring& frame) {
  const std::size_t f = frame.size();
  const std::span<std::uint64_t> words = frame.words();
  for (const std::uint32_t slot : slots) {
    RFID_EXPECT(slot < f, "slot choice outside frame");
    words[slot >> 6] |= std::uint64_t{1} << (slot & 63);
  }
}

bits::Bitstring bulk_trp_frame(const hash::SlotHasher& hasher,
                               std::span<const std::uint64_t> slot_words,
                               std::uint64_t r, std::uint32_t frame_size) {
  RFID_EXPECT(frame_size >= 1, "frame size must be positive");
  bits::Bitstring frame(frame_size);
  const std::span<std::uint64_t> words = frame.words();
#if defined(RFIDMON_COLUMNAR_SIMD)
  if (const SlotsKernel kernel = pick_slots_kernel(hasher.kind())) {
    // Hash a cache-resident chunk with the vector kernel, then scatter it;
    // the scatter stays scalar (lanes may collide on a frame word).
    constexpr std::size_t kChunk = 1024;
    std::uint32_t slots[kChunk];
    std::size_t done = 0;
    const std::size_t n = slot_words.size();
    while (done < n) {
      const std::size_t count = (n - done < kChunk) ? n - done : kChunk;
      kernel(slot_words.data() + done, count, r, frame_size, slots);
      for (std::size_t i = 0; i < count; ++i) {
        const std::uint32_t slot = slots[i];
        words[slot >> 6] |= std::uint64_t{1} << (slot & 63);
      }
      done += count;
    }
    return frame;
  }
#endif
  with_mixer(hasher, [&](auto mix) {
    for (const std::uint64_t word : slot_words) {
      const std::uint32_t slot = reduce(mix(word ^ r), frame_size);
      words[slot >> 6] |= std::uint64_t{1} << (slot & 63);
    }
  });
  return frame;
}

}  // namespace rfid::tag
