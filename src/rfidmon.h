// Umbrella header for the rfidmon library — everything a downstream user
// needs to monitor a set of RFID tags for missing tags, per
// Tan, Sheng & Li, "How to Monitor for Missing RFID Tags" (ICDCS 2008).
//
// Quick orientation (see README.md for a walkthrough):
//   * protocol/trp.h        — TRP: trusted-reader monitoring (Sec. 4)
//   * protocol/utrp.h       — UTRP: untrusted-reader monitoring (Sec. 5)
//   * protocol/collect_all.h — the collect-all baseline
//   * server/inventory_server.h — multi-group server front-end
//   * fleet/fleet.h         — concurrent multi-zone fleet orchestration
//   * storage/durable_server.h — crash-consistent persistence (WAL + snapshots)
//   * math/frame_optimizer.h — Eq. (2) / Eq. (3) frame sizing
//   * attack/…              — the adversaries both protocols are measured against
#pragma once

#include "attack/split_attack.h"      // IWYU pragma: export
#include "attack/timed_attack.h"      // IWYU pragma: export
#include "attack/utrp_attack.h"       // IWYU pragma: export
#include "bitstring/bitstring.h"      // IWYU pragma: export
#include "estimate/adaptive.h"        // IWYU pragma: export
#include "estimate/cardinality.h"     // IWYU pragma: export
#include "estimate/upe.h"             // IWYU pragma: export
#include "fault/fault.h"              // IWYU pragma: export
#include "fault/storage_fault.h"      // IWYU pragma: export
#include "fleet/fleet.h"              // IWYU pragma: export
#include "fleet/scheduler.h"          // IWYU pragma: export
#include "fusion/fusion.h"            // IWYU pragma: export
#include "hash/slot_hash.h"           // IWYU pragma: export
#include "math/approximation.h"       // IWYU pragma: export
#include "math/binomial.h"            // IWYU pragma: export
#include "math/detection.h"           // IWYU pragma: export
#include "math/frame_optimizer.h"     // IWYU pragma: export
#include "math/fused_detection.h"     // IWYU pragma: export
#include "protocol/air_driver.h"      // IWYU pragma: export
#include "protocol/collect_all.h"     // IWYU pragma: export
#include "protocol/identification.h"  // IWYU pragma: export
#include "protocol/identify.h"        // IWYU pragma: export
#include "protocol/messages.h"        // IWYU pragma: export
#include "protocol/multi_round.h"     // IWYU pragma: export
#include "protocol/provisioning.h"    // IWYU pragma: export
#include "protocol/q_protocol.h"      // IWYU pragma: export
#include "protocol/tree_walk.h"       // IWYU pragma: export
#include "protocol/trp.h"             // IWYU pragma: export
#include "protocol/utrp.h"            // IWYU pragma: export
#include "radio/channel.h"            // IWYU pragma: export
#include "radio/frame.h"              // IWYU pragma: export
#include "radio/timing.h"             // IWYU pragma: export
#include "server/group_planner.h"     // IWYU pragma: export
#include "server/inventory_server.h"  // IWYU pragma: export
#include "server/snapshot.h"          // IWYU pragma: export
#include "sim/event_queue.h"          // IWYU pragma: export
#include "storage/backend.h"          // IWYU pragma: export
#include "storage/durable_server.h"   // IWYU pragma: export
#include "storage/fleet_journal.h"    // IWYU pragma: export
#include "storage/journal.h"          // IWYU pragma: export
#include "storage/server_state.h"     // IWYU pragma: export
#include "sim/trial_runner.h"         // IWYU pragma: export
#include "tag/tag_set.h"              // IWYU pragma: export
#include "util/random.h"              // IWYU pragma: export
#include "wire/codec.h"               // IWYU pragma: export
#include "wire/link.h"                // IWYU pragma: export
#include "wire/messages.h"            // IWYU pragma: export
#include "wire/session.h"             // IWYU pragma: export
#include "util/stats.h"               // IWYU pragma: export
#include "util/table.h"               // IWYU pragma: export
