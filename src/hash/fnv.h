// Fowler–Noll–Vo hashes (FNV-1a, 32- and 64-bit).
//
// The cheapest of the three hash families offered for tag slot selection;
// adequate avalanche for the low bits after the final mixing used by
// SlotHasher, and representative of what a real low-cost tag could compute.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace rfid::hash {

inline constexpr std::uint64_t kFnv64OffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnv64Prime = 0x100000001b3ULL;
inline constexpr std::uint32_t kFnv32OffsetBasis = 0x811c9dc5U;
inline constexpr std::uint32_t kFnv32Prime = 0x01000193U;

/// FNV-1a over an arbitrary byte sequence.
[[nodiscard]] std::uint64_t fnv1a64(std::span<const std::byte> data) noexcept;
[[nodiscard]] std::uint32_t fnv1a32(std::span<const std::byte> data) noexcept;

/// FNV-1a over the 8 little-endian bytes of `value` — the fast path used by
/// slot selection, where the hashed quantity is a 64-bit word.
[[nodiscard]] constexpr std::uint64_t fnv1a64_u64(std::uint64_t value) noexcept {
  std::uint64_t h = kFnv64OffsetBasis;
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (8 * i)) & 0xffU;
    h *= kFnv64Prime;
  }
  return h;
}

}  // namespace rfid::hash
