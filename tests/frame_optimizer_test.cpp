// Tests for the Eq. (2) and Eq. (3) frame-size optimizers.
#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>

#include "math/detection.h"
#include "math/frame_optimizer.h"

namespace {

using rfid::math::detection_probability;
using rfid::math::EmptySlotModel;
using rfid::math::optimize_trp_frame;
using rfid::math::optimize_utrp_frame;
using rfid::math::utrp_detection_probability;

// ----------------------------------------------------------------- Eq. 2 --

TEST(TrpOptimizer, SatisfiesConstraintAtOptimum) {
  const auto plan = optimize_trp_frame(1000, 10, 0.95);
  EXPECT_GT(plan.predicted_detection, 0.95);
  EXPECT_NEAR(plan.predicted_detection,
              detection_probability(1000, 11, plan.frame_size), 1e-12);
}

TEST(TrpOptimizer, IsMinimal) {
  for (const std::uint64_t n : {100u, 500u, 1500u}) {
    for (const std::uint64_t m : {0u, 5u, 30u}) {
      const auto plan = optimize_trp_frame(n, m, 0.95);
      ASSERT_GT(plan.frame_size, 1u);
      EXPECT_LE(detection_probability(n, m + 1, plan.frame_size - 1), 0.95)
          << "n=" << n << " m=" << m << " f=" << plan.frame_size;
    }
  }
}

TEST(TrpOptimizer, MatchesLinearScanOnSmallInputs) {
  // Ground truth by exhaustive search.
  for (const std::uint64_t n : {20u, 60u, 150u}) {
    for (const std::uint64_t m : {0u, 2u, 5u}) {
      const auto plan = optimize_trp_frame(n, m, 0.9);
      std::uint32_t truth = 0;
      for (std::uint32_t f = 1; f < 10000; ++f) {
        if (detection_probability(n, m + 1, f) > 0.9) {
          truth = f;
          break;
        }
      }
      EXPECT_EQ(plan.frame_size, truth) << "n=" << n << " m=" << m;
    }
  }
}

TEST(TrpOptimizer, FrameGrowsLinearlyWithN) {
  // Fig. 4's qualitative shape: f scales roughly linearly in n for fixed m.
  const auto f500 = optimize_trp_frame(500, 5, 0.95).frame_size;
  const auto f1000 = optimize_trp_frame(1000, 5, 0.95).frame_size;
  const auto f2000 = optimize_trp_frame(2000, 5, 0.95).frame_size;
  EXPECT_NEAR(static_cast<double>(f1000) / f500, 2.0, 0.2);
  EXPECT_NEAR(static_cast<double>(f2000) / f1000, 2.0, 0.2);
}

TEST(TrpOptimizer, FrameShrinksWithTolerance) {
  // More tolerated losses -> fewer slots needed (Fig. 4 across panels).
  const auto m5 = optimize_trp_frame(2000, 5, 0.95).frame_size;
  const auto m10 = optimize_trp_frame(2000, 10, 0.95).frame_size;
  const auto m30 = optimize_trp_frame(2000, 30, 0.95).frame_size;
  EXPECT_GT(m5, m10);
  EXPECT_GT(m10, m30);
}

TEST(TrpOptimizer, FrameGrowsWithConfidence) {
  const auto lo = optimize_trp_frame(1000, 5, 0.90).frame_size;
  const auto mid = optimize_trp_frame(1000, 5, 0.95).frame_size;
  const auto hi = optimize_trp_frame(1000, 5, 0.999).frame_size;
  EXPECT_LT(lo, mid);
  EXPECT_LT(mid, hi);
}

TEST(TrpOptimizer, StrictMonitoringSingleItem) {
  // m = 0, alpha = 0.99 — the paper's "strict monitoring" example.
  const auto plan = optimize_trp_frame(100, 0, 0.99);
  EXPECT_GT(plan.predicted_detection, 0.99);
  EXPECT_GT(plan.frame_size, 100u);  // one missing tag needs a sparse frame
}

TEST(TrpOptimizer, WorksWithExactModel) {
  const auto plan = optimize_trp_frame(300, 3, 0.95, EmptySlotModel::kExact);
  EXPECT_GT(detection_probability(300, 4, plan.frame_size, EmptySlotModel::kExact),
            0.95);
}

TEST(TrpOptimizer, RejectsBadParameters) {
  EXPECT_THROW((void)optimize_trp_frame(0, 0, 0.95), std::invalid_argument);
  EXPECT_THROW((void)optimize_trp_frame(5, 5, 0.95), std::invalid_argument);
  EXPECT_THROW((void)optimize_trp_frame(10, 1, 0.0), std::invalid_argument);
  EXPECT_THROW((void)optimize_trp_frame(10, 1, 1.0), std::invalid_argument);
}

TEST(TrpOptimizer, UnsatisfiableAlphaThrows) {
  // alpha numerically indistinguishable from 1 can exceed any frame bound.
  EXPECT_THROW((void)optimize_trp_frame(10, 0, 1.0 - 1e-16),
               std::invalid_argument);
}

// ----------------------------------------------------------------- Eq. 3 --

TEST(UtrpDetection, ZeroWhenAdversaryCoversWholeFrame) {
  // With a huge budget c, c' >= f and the attack is undetectable.
  EXPECT_DOUBLE_EQ(utrp_detection_probability(100, 5, 100000, 200), 0.0);
}

TEST(UtrpDetection, MatchesTrpWhenBudgetIsZero) {
  // c = 0 means no collaboration at all: the stolen tags contribute exactly
  // as in TRP, so Eq. 3 collapses to (a mixture dominated by) g(n, m+1, f).
  const std::uint64_t n = 500;
  const std::uint64_t m = 5;
  const std::uint64_t f = 600;
  const double eq3 = utrp_detection_probability(n, m, 0, f);
  const double trp = detection_probability(n, m + 1, f);
  EXPECT_NEAR(eq3, trp, 0.02);
}

TEST(UtrpDetection, DecreasesWithBudget) {
  const std::uint64_t n = 1000;
  const std::uint64_t m = 10;
  const std::uint64_t f = 800;
  double prev = 1.0;
  for (const std::uint64_t c : {0u, 10u, 20u, 50u, 100u}) {
    const double d = utrp_detection_probability(n, m, c, f);
    EXPECT_LE(d, prev + 1e-9) << "c=" << c;
    prev = d;
  }
}

TEST(UtrpDetection, IncreasesWithFrameSize) {
  const std::uint64_t n = 1000;
  const std::uint64_t m = 10;
  double prev = 0.0;
  for (std::uint64_t f = 700; f <= 1600; f += 100) {
    const double d = utrp_detection_probability(n, m, 20, f);
    EXPECT_GE(d, prev - 1e-9) << "f=" << f;
    prev = d;
  }
}

TEST(UtrpOptimizer, SatisfiesConstraintIncludingSlack) {
  const auto plan = optimize_utrp_frame(1000, 10, 0.95, 20);
  EXPECT_GT(plan.predicted_detection, 0.95);
  EXPECT_EQ(plan.frame_size, plan.optimal_frame + 8);
  EXPECT_LE(utrp_detection_probability(1000, 10, 20, plan.optimal_frame - 1),
            0.95);
}

TEST(UtrpOptimizer, NeverSmallerThanTrp) {
  // The adversary only gains information relative to TRP (Sec. 5.4).
  for (const std::uint64_t n : {200u, 1000u, 2000u}) {
    for (const std::uint64_t m : {5u, 20u}) {
      const auto trp = optimize_trp_frame(n, m, 0.95);
      const auto utrp = optimize_utrp_frame(n, m, 0.95, 20, 0);
      EXPECT_GE(utrp.frame_size, trp.frame_size) << "n=" << n << " m=" << m;
    }
  }
}

TEST(UtrpOptimizer, OverheadOverTrpIsModest) {
  // Fig. 6's observation: the UTRP overhead is small at c = 20.
  const auto trp = optimize_trp_frame(2000, 10, 0.95);
  const auto utrp = optimize_utrp_frame(2000, 10, 0.95, 20);
  EXPECT_LT(utrp.frame_size, trp.frame_size * 3 / 2);
}

TEST(UtrpOptimizer, FrameGrowsWithBudget) {
  const auto c10 = optimize_utrp_frame(1000, 10, 0.95, 10, 0).frame_size;
  const auto c40 = optimize_utrp_frame(1000, 10, 0.95, 40, 0).frame_size;
  const auto c100 = optimize_utrp_frame(1000, 10, 0.95, 100, 0).frame_size;
  EXPECT_LE(c10, c40);
  EXPECT_LT(c40, c100);
}

TEST(UtrpOptimizer, ExpectedCprimeMatchesTheorem3) {
  const auto plan = optimize_utrp_frame(500, 5, 0.95, 20);
  const double p_empty = rfid::math::empty_slot_probability(
      500 - 5 - 1, plan.frame_size, EmptySlotModel::kPoissonApprox);
  EXPECT_NEAR(plan.expected_cprime, 20.0 / p_empty, 1e-9);
  EXPECT_LT(plan.expected_cprime, plan.frame_size);
}

TEST(UtrpOptimizer, RejectsBadParameters) {
  EXPECT_THROW((void)optimize_utrp_frame(0, 0, 0.95, 20), std::invalid_argument);
  EXPECT_THROW((void)optimize_utrp_frame(10, 1, 1.5, 20), std::invalid_argument);
}

// Parameterized sweep over the paper's full evaluation grid: both optimizers
// must produce frames satisfying their constraints for every (n, m) pair of
// Figs. 4–7.
class PaperGrid
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t>> {};

TEST_P(PaperGrid, BothOptimizersSatisfyConstraints) {
  const auto [n, m] = GetParam();
  const double alpha = 0.95;
  const auto trp = optimize_trp_frame(n, m, alpha);
  EXPECT_GT(trp.predicted_detection, alpha);
  const auto utrp = optimize_utrp_frame(n, m, alpha, 20);
  EXPECT_GT(utrp.predicted_detection, alpha);
  EXPECT_GE(utrp.frame_size, trp.frame_size);
}

INSTANTIATE_TEST_SUITE_P(
    EvaluationSection, PaperGrid,
    ::testing::Combine(::testing::Values(100u, 400u, 800u, 1200u, 1600u, 2000u),
                       ::testing::Values(5u, 10u, 20u, 30u)));

}  // namespace
