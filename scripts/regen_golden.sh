#!/usr/bin/env bash
# Regenerates tests/golden/metrics_*.txt from the seeded scenario in
# tests/obs_golden_test.cpp. Run after an INTENTIONAL change to the metric
# catalog or the exposition formats, then review the golden diff like any
# other code change.
#
# Usage: scripts/regen_golden.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if [[ ! -d "$BUILD_DIR" ]]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$BUILD_DIR" --target obs_golden_test -j

mkdir -p tests/golden
RFIDMON_REGEN_GOLDEN=1 "$BUILD_DIR/tests/obs_golden_test"

echo "Regenerated:"
git diff --stat -- tests/golden || true
