// Identification stress battery (ctest label `slow`): the soundness
// invariants of the protocol family at population scales and channel
// conditions the fast battery (identify_test.cpp) doesn't reach.
//
// The invariants under stress — never weakened by load:
//   * partition: missing + present + unresolved == enrolled, no tag twice;
//   * no false accusation: a physically present tag never lands in
//     `missing`, however lossy the channel;
//   * no false clearance: a stolen tag never lands in `present` (a
//     fabricated reply is physically impossible);
//   * exactness on a clean channel: the missing set IS the stolen set.
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "hash/slot_hash.h"
#include "protocol/collect_all.h"
#include "protocol/identification.h"
#include "radio/timing.h"
#include "tag/tag_set.h"
#include "util/random.h"

namespace {

using namespace rfid;
using protocol::IdentifyProtocolKind;

std::unordered_set<std::uint64_t> words_of(
    const std::vector<tag::TagId>& ids) {
  std::unordered_set<std::uint64_t> out;
  out.reserve(ids.size());
  for (const tag::TagId& id : ids) out.insert(id.slot_word());
  return out;
}

/// Checks the partition + soundness invariants of one campaign against the
/// ground-truth stolen set.
void check_sound(const protocol::IdentifyResult& result,
                 const std::vector<tag::TagId>& enrolled,
                 const std::unordered_set<std::uint64_t>& stolen_words) {
  ASSERT_EQ(result.missing.size() + result.present.size() +
                result.unresolved.size(),
            enrolled.size());
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(enrolled.size());
  for (const auto* bucket : {&result.missing, &result.present,
                             &result.unresolved}) {
    for (const tag::TagId& id : *bucket) {
      ASSERT_TRUE(seen.insert(id.slot_word()).second)
          << "tag classified twice";
    }
  }
  for (const tag::TagId& accused : result.missing) {
    ASSERT_TRUE(stolen_words.contains(accused.slot_word()))
        << "present tag falsely accused";
  }
  for (const tag::TagId& cleared : result.present) {
    ASSERT_FALSE(stolen_words.contains(cleared.slot_word()))
        << "stolen tag falsely cleared";
  }
}

TEST(IdentifyStress, QuarterMillionTagsExactOnACleanChannel) {
  const hash::SlotHasher hasher;
  for (const IdentifyProtocolKind kind : {IdentifyProtocolKind::kIterative,
                                          IdentifyProtocolKind::kFilterFirst}) {
    util::Rng rng(util::derive_seed(60, static_cast<std::uint64_t>(kind)));
    tag::TagSet set = tag::TagSet::make_random(250'000, rng);
    const std::vector<tag::TagId> enrolled = set.ids();
    const tag::TagSet stolen = set.steal_random(700, rng);
    const auto identifier = protocol::make_identification_protocol(kind, {});
    const protocol::IdentifyResult result =
        identifier->identify(enrolled, set.tags(), hasher, rng);
    EXPECT_TRUE(result.unresolved.empty());
    EXPECT_EQ(result.missing.size(), 700u);
    EXPECT_EQ(words_of(result.missing), words_of(stolen.ids()));
    check_sound(result, enrolled, words_of(stolen.ids()));
  }
}

TEST(IdentifyStress, RandomizedLossyCampaignsStaySound) {
  // 60 randomized campaigns per member: population, theft fraction, loss,
  // and capture all drawn per seed. Soundness must hold in every single
  // one — a lossy channel may leave tags unresolved, never misclassified.
  const hash::SlotHasher hasher;
  for (const IdentifyProtocolKind kind : {IdentifyProtocolKind::kIterative,
                                          IdentifyProtocolKind::kFilterFirst}) {
    for (std::uint64_t seed = 0; seed < 60; ++seed) {
      util::Rng rng(util::derive_seed(61, static_cast<std::uint64_t>(kind),
                                      seed));
      const std::uint64_t n = 500 + rng.below(4'500);
      tag::TagSet set = tag::TagSet::make_random(n, rng);
      const std::vector<tag::TagId> enrolled = set.ids();
      const tag::TagSet stolen =
          set.steal_random(static_cast<std::size_t>(rng.below(n / 2)), rng);
      protocol::IdentifyConfig config;
      config.channel.reply_loss_prob =
          static_cast<double>(rng.below(40)) / 100.0;  // 0.00 .. 0.39
      config.channel.capture_prob =
          static_cast<double>(rng.below(20)) / 100.0;  // 0.00 .. 0.19
      const auto identifier =
          protocol::make_identification_protocol(kind, config);
      const protocol::IdentifyResult result =
          identifier->identify(enrolled, set.tags(), hasher, rng);
      check_sound(result, enrolled, words_of(stolen.ids()));
    }
  }
}

TEST(IdentifyStress, FilterFirstBeatsCollectAllAtScale) {
  // The bench's headline claim, pinned as a test at one heavyweight point:
  // n = 200k, m = 1k (a 0.5% theft), filter-first must finish every tag
  // and spend under half of collect-all's air time.
  const hash::SlotHasher hasher;
  const radio::TimingModel timing;
  util::Rng rng(62);
  tag::TagSet set = tag::TagSet::make_random(200'000, rng);
  const std::vector<tag::TagId> enrolled = set.ids();
  const tag::TagSet stolen = set.steal_random(1'000, rng);
  const auto identifier = protocol::make_identification_protocol(
      IdentifyProtocolKind::kFilterFirst, {});
  const protocol::IdentifyResult result =
      identifier->identify(enrolled, set.tags(), hasher, rng);
  EXPECT_TRUE(result.unresolved.empty());
  EXPECT_EQ(words_of(result.missing), words_of(stolen.ids()));

  util::Rng collect_rng(62);
  const auto collect = protocol::run_collect_all(
      set.tags(), hasher, {.stop_after_collected = set.size()}, collect_rng);
  EXPECT_GT(collect.elapsed_us(timing), 2.0 * result.elapsed_us(timing));
}

}  // namespace
