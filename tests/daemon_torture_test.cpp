// Kill-resume equivalence for the continuous-monitoring daemon.
//
// The guarantee under test: a daemon killed at ANY point — every scripted
// daemon crash point, and every mutating storage operation under the
// checkpoint write path, before or after its effect — restarts, replays its
// journal, and ends with an alert history and verdict sequence bit-identical
// to a daemon that never crashed. No lost alerts, no duplicates, no sequence
// gaps.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include <variant>

#include "daemon/daemon.h"
#include "fault/daemon_fault.h"
#include "fault/fault.h"
#include "fault/storage_fault.h"
#include "storage/backend.h"
#include "storage/daemon_journal.h"

namespace {

using namespace rfid;

// A warehouse whose 3 epochs raise a nontrivial alert history: theft in
// zone 0 from epoch 1, a dead reader on zone 2 in epochs 0-1 (escalation at
// the streak of 2), and enrollment growth at epoch 2 (replan).
daemon::WarehouseConfig eventful_warehouse() {
  daemon::WarehouseConfig warehouse;
  warehouse.initial_tags = 18;
  warehouse.tolerance = 2;
  warehouse.zone_capacity = 6;
  warehouse.rounds = 1;
  warehouse.churn.push_back(daemon::ChurnEvent{
      .epoch = 1, .enroll = 0, .decommission = 0, .steal = 4, .steal_from = 0});
  warehouse.churn.push_back(daemon::ChurnEvent{.epoch = 2, .enroll = 12});
  fault::FaultPlan dead;
  dead.reader_crashes.push_back(fault::CrashWindow{0.0, 0.0});
  warehouse.zone_faults.push_back({.epoch = 0, .zone = 2, .plan = dead});
  warehouse.zone_faults.push_back({.epoch = 1, .zone = 2, .plan = dead});
  return warehouse;
}

daemon::DaemonConfig torture_config(storage::StorageBackend& backend) {
  daemon::DaemonConfig config;
  config.seed = 11;
  config.epochs = 3;
  config.backend = &backend;
  config.faults_on_retries = true;
  config.debounce_epochs = 2;
  config.quarantine_after_epochs = 4;
  config.backoff_initial_ms = 0;
  config.backoff_cap_ms = 1;
  return config;
}

struct Baseline {
  std::string history;
  std::vector<daemon::EpochVerdict> verdicts;
};

Baseline uncrashed_baseline() {
  storage::MemoryBackend backend;
  daemon::MonitorDaemon d(torture_config(backend), eventful_warehouse());
  const daemon::DaemonResult result = d.run();
  Baseline baseline{daemon::render_alert_history(result.alerts),
                    result.epoch_verdicts};
  // The sweep is only meaningful if there is a history to corrupt.
  EXPECT_GE(result.alerts.size(), 3u);
  EXPECT_EQ(result.restarts, 0u);
  return baseline;
}

void expect_equivalent(const Baseline& baseline,
                       const daemon::DaemonResult& result,
                       const std::string& label) {
  EXPECT_FALSE(result.gave_up) << label;
  EXPECT_EQ(result.epochs_completed, 3u) << label;
  EXPECT_EQ(result.epoch_verdicts, baseline.verdicts) << label;
  EXPECT_EQ(daemon::render_alert_history(result.alerts), baseline.history)
      << label;
  for (std::size_t i = 0; i < result.alerts.size(); ++i) {
    EXPECT_EQ(result.alerts[i].sequence, i) << label << " alert " << i;
  }
}

TEST(DaemonTorture, EveryDaemonCrashPointResumesIdentically) {
  const Baseline baseline = uncrashed_baseline();
  const fault::DaemonCrashPoint points[] = {
      fault::DaemonCrashPoint::kEpochStart,
      fault::DaemonCrashPoint::kAfterFleetRun,
      fault::DaemonCrashPoint::kBeforeCheckpoint,
      fault::DaemonCrashPoint::kAfterCheckpoint,
  };
  for (std::uint64_t epoch = 0; epoch < 3; ++epoch) {
    for (const fault::DaemonCrashPoint point : points) {
      const std::string label = "epoch " + std::to_string(epoch) + " @ " +
                                std::string(fault::to_string(point));
      fault::DaemonFaultPlan plan;
      plan.crashes.push_back({epoch, point});
      fault::DaemonFaultInjector faults(plan);

      storage::MemoryBackend backend;
      daemon::DaemonConfig config = torture_config(backend);
      config.faults = &faults;
      config.crash_hook = [&backend] { backend.crash(); };
      daemon::MonitorDaemon d(config, eventful_warehouse());
      const daemon::DaemonResult result = d.run();

      EXPECT_EQ(result.crash_restarts, 1u) << label;
      EXPECT_EQ(faults.crashes_delivered(), 1u) << label;
      expect_equivalent(baseline, result, label);
    }
  }
}

TEST(DaemonTorture, EveryStorageOpCrashResumesIdentically) {
  const Baseline baseline = uncrashed_baseline();

  // Learn how many mutating storage ops (daemon journal + fleet journal)
  // one uncrashed daemon life performs.
  std::uint64_t total_ops = 0;
  {
    storage::MemoryBackend inner;
    fault::FaultyBackend backend(inner, fault::StorageFaultPlan{});
    daemon::MonitorDaemon d(torture_config(backend), eventful_warehouse());
    expect_equivalent(baseline, d.run(), "op census");
    total_ops = backend.mutating_ops();
  }
  ASSERT_GT(total_ops, 10u);

  for (std::uint64_t op = 1; op <= total_ops; ++op) {
    for (const bool before : {false, true}) {
      const std::string label = "op " + std::to_string(op) +
                                (before ? " before" : " after") + " effect";
      storage::MemoryBackend inner;
      fault::StorageFaultPlan plan;
      plan.crash_at_op = op;
      plan.crash_before_effect = before;
      fault::FaultyBackend backend(inner, plan);

      daemon::DaemonConfig config = torture_config(backend);
      config.crash_hook = [&inner] { inner.crash(); };
      daemon::MonitorDaemon d(config, eventful_warehouse());
      const daemon::DaemonResult result = d.run();

      EXPECT_EQ(result.crash_restarts, 1u) << label;
      expect_equivalent(baseline, result, label);
    }
  }
}

// Rotation crossed with the crash sweeps. rotate_after = 1 folds the
// journal after EVERY checkpoint, so every epoch boundary carries a
// rotation rewrite (tmp write, flush, rename) — and every crash point
// lands either mid-rotation or between a checkpoint and its fold. The
// rotated journal must resume to the same history the unrotated baseline
// produces: rotation is pure storage layout, invisible to replay.
TEST(DaemonTorture, RotationCrossedWithEveryDaemonCrashPoint) {
  const Baseline baseline = uncrashed_baseline();
  const fault::DaemonCrashPoint points[] = {
      fault::DaemonCrashPoint::kEpochStart,
      fault::DaemonCrashPoint::kAfterFleetRun,
      fault::DaemonCrashPoint::kBeforeCheckpoint,
      fault::DaemonCrashPoint::kAfterCheckpoint,
  };
  for (std::uint64_t epoch = 0; epoch < 3; ++epoch) {
    for (const fault::DaemonCrashPoint point : points) {
      const std::string label = "rotating epoch " + std::to_string(epoch) +
                                " @ " + std::string(fault::to_string(point));
      fault::DaemonFaultPlan plan;
      plan.crashes.push_back({epoch, point});
      fault::DaemonFaultInjector faults(plan);

      storage::MemoryBackend backend;
      daemon::DaemonConfig config = torture_config(backend);
      config.journal_rotate_after = 1;
      config.faults = &faults;
      config.crash_hook = [&backend] { backend.crash(); };
      daemon::MonitorDaemon d(config, eventful_warehouse());
      const daemon::DaemonResult result = d.run();

      EXPECT_EQ(result.crash_restarts, 1u) << label;
      expect_equivalent(baseline, result, label);

      // The journal really did stay folded: [start][snapshot] holding all
      // three verdicts, not start + a checkpoint per epoch.
      const auto scan = storage::scan_daemon_journal(
          backend.read(config.journal_name));
      ASSERT_EQ(scan.records.size(), 2u) << label;
      const auto* snapshot =
          std::get_if<storage::DaemonSnapshotRecord>(&scan.records[1]);
      ASSERT_NE(snapshot, nullptr) << label;
      EXPECT_EQ(snapshot->verdicts.size(), 3u) << label;
    }
  }
}

TEST(DaemonTorture, RotationCrossedWithEveryStorageOpCrash) {
  const Baseline baseline = uncrashed_baseline();

  // The census re-learns the op count with rotation on: each epoch now
  // appends its checkpoint AND rewrites the folded journal, so the sweep
  // below crashes inside the rotation's own tmp/flush/rename traffic too.
  std::uint64_t total_ops = 0;
  {
    storage::MemoryBackend inner;
    fault::FaultyBackend backend(inner, fault::StorageFaultPlan{});
    daemon::DaemonConfig config = torture_config(backend);
    config.journal_rotate_after = 1;
    daemon::MonitorDaemon d(config, eventful_warehouse());
    expect_equivalent(baseline, d.run(), "rotating op census");
    total_ops = backend.mutating_ops();
  }
  ASSERT_GT(total_ops, 10u);

  for (std::uint64_t op = 1; op <= total_ops; ++op) {
    for (const bool before : {false, true}) {
      const std::string label = "rotating op " + std::to_string(op) +
                                (before ? " before" : " after") + " effect";
      storage::MemoryBackend inner;
      fault::StorageFaultPlan plan;
      plan.crash_at_op = op;
      plan.crash_before_effect = before;
      fault::FaultyBackend backend(inner, plan);

      daemon::DaemonConfig config = torture_config(backend);
      config.journal_rotate_after = 1;
      config.crash_hook = [&inner] { inner.crash(); };
      daemon::MonitorDaemon d(config, eventful_warehouse());
      const daemon::DaemonResult result = d.run();

      EXPECT_EQ(result.crash_restarts, 1u) << label;
      expect_equivalent(baseline, result, label);
    }
  }
}

TEST(DaemonTorture, TornCheckpointTailIsCompactedAndResumed) {
  const Baseline baseline = uncrashed_baseline();

  // Crash inside an append persisting only half the record: the journal
  // must truncate the torn tail on replay, compact it away, and re-run the
  // interrupted epoch.
  std::uint64_t total_ops = 0;
  {
    storage::MemoryBackend inner;
    fault::FaultyBackend backend(inner, fault::StorageFaultPlan{});
    daemon::MonitorDaemon d(torture_config(backend), eventful_warehouse());
    (void)d.run();
    total_ops = backend.mutating_ops();
  }
  for (std::uint64_t op = 1; op <= total_ops; op += 3) {
    const std::string label = "torn append at op " + std::to_string(op);
    storage::MemoryBackend inner;
    fault::StorageFaultPlan plan;
    plan.crash_at_op = op;
    plan.crash_before_effect = false;
    plan.torn_keep_fraction = 0.5;
    fault::FaultyBackend backend(inner, plan);

    daemon::DaemonConfig config = torture_config(backend);
    config.crash_hook = [&inner] { inner.crash(); };
    daemon::MonitorDaemon d(config, eventful_warehouse());
    expect_equivalent(baseline, d.run(), label);
  }
}

}  // namespace
