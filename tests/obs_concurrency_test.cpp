// Concurrency hammers for the lock-free metrics fast path. These tests are
// the payload of the ThreadSanitizer CI job (RFIDMON_SANITIZE=thread builds
// this binary and runs it directly): under TSan any unsynchronized access in
// Counter/Gauge/Histogram or the family maps is a hard failure, and without
// TSan the exact-total assertions still catch lost updates.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "obs/catalog.h"
#include "obs/expose.h"
#include "obs/metrics.h"

namespace {

using namespace rfid;

constexpr unsigned kThreads = 8;
constexpr std::uint64_t kOpsPerThread = 20000;

void run_threads(const std::function<void(unsigned)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back(body, t);
  }
  for (std::thread& thread : threads) thread.join();
}

TEST(ObsConcurrency, CounterIncrementsAreNeverLost) {
  obs::MetricsRegistry reg;
  obs::Counter& counter = reg.counter("t_hammer_total", "Hammer.");
  run_threads([&counter](unsigned) {
    for (std::uint64_t i = 0; i < kOpsPerThread; ++i) counter.inc();
  });
  EXPECT_EQ(counter.value(), kThreads * kOpsPerThread);
}

TEST(ObsConcurrency, GaugeAddIsAtomicUnderContention) {
  obs::MetricsRegistry reg;
  obs::Gauge& gauge = reg.gauge("t_gauge", "Gauge.");
  // +1 then -1 per iteration from every thread: any lost CAS leaves a
  // nonzero residue.
  run_threads([&gauge](unsigned) {
    for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
      gauge.add(1.0);
      gauge.add(-1.0);
    }
  });
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST(ObsConcurrency, HistogramObservationsAreNeverLost) {
  obs::MetricsRegistry reg;
  obs::Histogram& h =
      reg.histogram("t_lat", "Latency.", {1.0, 10.0, 100.0});
  run_threads([&h](unsigned t) {
    for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
      h.observe(static_cast<double>((t * kOpsPerThread + i) % 200));
    }
  });
  constexpr std::uint64_t kTotal = kThreads * kOpsPerThread;
  EXPECT_EQ(h.count(), kTotal);
  std::uint64_t bucket_sum = 0;
  for (std::size_t b = 0; b <= h.upper_bounds().size(); ++b) {
    bucket_sum += h.bucket_count(b);
  }
  EXPECT_EQ(bucket_sum, kTotal);
  // Every thread walks the same residue cycle 0..199, so the exact sum is
  // known: kTotal/200 full cycles of sum 19900.
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kTotal / 200) * 19900.0);
}

TEST(ObsConcurrency, FamilyResolutionRacesYieldOneSeriesPerLabelSet) {
  obs::MetricsRegistry reg;
  // All threads resolve the same families and series concurrently — the
  // mutex-guarded slow path must hand every thread the same node.
  run_threads([&reg](unsigned t) {
    for (std::uint64_t i = 0; i < 2000; ++i) {
      obs::catalog::rounds_total(reg, "trp", "intact").inc();
      obs::catalog::rounds_total(reg, t % 2 == 0 ? "trp" : "utrp", "mismatch")
          .inc();
      // std::string + append, not "v" + to_string(...): the const char* +
      // string&& overload trips a GCC 12 -Wrestrict false positive at -O2.
      std::string label("v");
      label += std::to_string(t % 4);
      reg.counter_family("t_dyn_total", "Dynamic.", {"k"})
          .with({label})
          .inc();
    }
  });
  EXPECT_EQ(obs::catalog::rounds_total(reg, "trp", "intact").value(),
            kThreads * 2000ull);
  EXPECT_EQ(obs::catalog::rounds_total(reg, "trp", "mismatch").value() +
                obs::catalog::rounds_total(reg, "utrp", "mismatch").value(),
            kThreads * 2000ull);
  std::uint64_t dynamic_total = 0;
  std::size_t dynamic_series = 0;
  for (const auto& family : reg.snapshot().families) {
    if (family.name != "t_dyn_total") continue;
    dynamic_series = family.series.size();
    for (const auto& series : family.series) {
      dynamic_total += static_cast<std::uint64_t>(series.value);
    }
  }
  EXPECT_EQ(dynamic_series, 4u);
  EXPECT_EQ(dynamic_total, kThreads * 2000ull);
}

TEST(ObsConcurrency, SnapshotWhileWritersRun) {
  obs::MetricsRegistry reg;
  obs::Counter& counter = reg.counter("t_live_total", "Live.");
  obs::Histogram& h = reg.histogram("t_live_us", "Live.", {1.0, 2.0});
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      counter.inc();
      h.observe(1.5);
    }
  });
  std::uint64_t last = 0;
  for (int i = 0; i < 200; ++i) {
    const obs::Snapshot snap = reg.snapshot();
    // Rendering must hold up against concurrent writers too.
    const std::string text = obs::render_prometheus(snap);
    EXPECT_NE(text.find("t_live_total"), std::string::npos);
    for (const auto& family : snap.families) {
      if (family.name != "t_live_total") continue;
      const auto value = static_cast<std::uint64_t>(family.series[0].value);
      EXPECT_GE(value, last);  // counters are monotone across snapshots
      last = value;
    }
  }
  stop.store(true);
  writer.join();
  EXPECT_EQ(counter.value(), h.count());
}

}  // namespace
