// Exposition: render a metrics Snapshot as Prometheus text or JSON.
//
// Both formats are deterministic down to the byte: families sorted by name,
// series by label values, doubles printed via std::to_chars shortest
// round-trip form (no locale, no precision surprises) — which is what lets
// tests/obs_golden_test.cpp compare a seeded end-to-end run against checked
// in golden files. The Prometheus text follows the exposition format v0.0.4
// (HELP/TYPE comments, cumulative _bucket series with an le label, _sum and
// _count); the JSON format is this library's own stable schema, one object
// with "counters" / "gauges" / "histograms" arrays plus an optional
// "sessions" array from a SessionLog.
#pragma once

#include <string>

#include "obs/metrics.h"
#include "obs/session_log.h"

namespace rfid::obs {

/// Shortest decimal form that round-trips to the same double ("13" for
/// 13.0, "0.25", "1e+30", "+Inf"/"-Inf"/"NaN"). Exposed for tests.
[[nodiscard]] std::string format_double(double value);

[[nodiscard]] std::string render_prometheus(const Snapshot& snapshot);

/// `sessions` (optional) embeds the ring buffer of recent session
/// summaries under a "sessions" key.
[[nodiscard]] std::string render_json(const Snapshot& snapshot,
                                      const SessionLog* sessions = nullptr);

}  // namespace rfid::obs
