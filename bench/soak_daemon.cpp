// Soak bench — supervised restart cost for the continuous-monitoring daemon.
//
// Two questions an operator deciding on checkpoint cadence and restart
// budgets needs answered:
//
//   1. Resume latency: how long does a restarted daemon spend replaying its
//      journal before monitoring continues, as a function of how many
//      epochs it had checkpointed? Without rotation the daemon replays
//      EVERY checkpoint (the O(epochs) column); with journal_rotate_after
//      set the journal folds itself into [start][snapshot] and the resume
//      cost is O(1) in the daemon's lifetime (the rotated columns).
//   2. Soak: a long run through a scripted fault storm — crashes at every
//      daemon crash point plus watchdog-killed hangs — reporting restarts,
//      replayed alerts, and verifying the alert history is bit-identical
//      to an undisturbed run (zero lost, zero duplicated).
//
// Extra options beyond the common set (bench_common.h):
//   --epochs N     soak length in epochs (default 48)
//   --tags N       warehouse population (default 60)
//   --repeats R    resume timing repetitions, best-of (default 5)
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "daemon/daemon.h"
#include "fault/daemon_fault.h"
#include "fault/fault.h"
#include "storage/backend.h"
#include "storage/daemon_journal.h"
#include "util/table.h"

namespace {

using namespace rfid;

daemon::WarehouseConfig make_warehouse(std::uint64_t tags) {
  daemon::WarehouseConfig warehouse;
  warehouse.initial_tags = tags;
  warehouse.tolerance = tags / 15;
  warehouse.zone_capacity = 20;
  warehouse.rounds = 1;
  return warehouse;
}

daemon::DaemonConfig make_config(storage::MemoryBackend& backend,
                                 std::uint64_t seed, std::uint64_t epochs,
                                 std::uint64_t rotate_after = 0) {
  daemon::DaemonConfig config;
  config.seed = seed;
  config.epochs = epochs;
  config.backend = &backend;
  config.backoff_initial_ms = 0;
  config.backoff_cap_ms = 1;
  config.max_restarts = 64;
  config.hang_timeout_ms = 100;
  config.journal_rotate_after = rotate_after;
  return config;
}

/// Checkpoints `epochs` epochs (folding the journal every `rotate_after`
/// checkpoints; 0 = never), then times a fresh daemon life opening the
/// journal and resuming from it (best of `repeats`). Also reports the
/// record count that resume had to parse.
double resume_latency_us(std::uint64_t tags, std::uint64_t epochs,
                         std::uint64_t seed, std::uint64_t repeats,
                         std::uint64_t rotate_after,
                         std::uint64_t* records_out) {
  storage::MemoryBackend backend;
  {
    daemon::MonitorDaemon d(make_config(backend, seed, epochs, rotate_after),
                            make_warehouse(tags));
    const daemon::DaemonResult result = d.run();
    RFID_EXPECT(result.epochs_completed == epochs, "soak bench: epochs");
  }
  if (records_out != nullptr) {
    *records_out = storage::scan_daemon_journal(
                       backend.read(daemon::DaemonConfig{}.journal_name))
                       .records.size();
  }
  double best = 0.0;
  for (std::uint64_t r = 0; r < repeats; ++r) {
    // Same config: the journal is already complete, so run() replays every
    // checkpoint and returns without executing an epoch — the measured
    // interval is exactly resume cost.
    daemon::MonitorDaemon d(make_config(backend, seed, epochs, rotate_after),
                            make_warehouse(tags));
    const daemon::DaemonResult result = d.run();
    RFID_EXPECT(result.epochs_completed == epochs, "soak bench: resume");
    if (r == 0 || result.last_resume_us < best) best = result.last_resume_us;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliArgs* extra = nullptr;
  const bench::FigureOptions opt = bench::parse_figure_options(
      argc, argv, &extra, {"epochs", "tags", "repeats"});
  const auto epochs =
      static_cast<std::uint64_t>(extra->get_int_or("epochs", 48));
  const auto tags = static_cast<std::uint64_t>(extra->get_int_or("tags", 60));
  const auto repeats =
      static_cast<std::uint64_t>(extra->get_int_or("repeats", 5));

  // ---- resume latency vs checkpointed epochs --------------------------
  // Side by side: an unrotated journal (replay cost grows with the
  // daemon's lifetime) vs journal_rotate_after = 8 (the journal folds into
  // [start][snapshot] every 8 checkpoints, so resume parses a bounded
  // record count no matter how long the daemon has lived).
  constexpr std::uint64_t kRotateAfter = 8;
  util::Table table({"epochs", "records_unrotated", "resume_us_unrotated",
                     "records_rotated", "resume_us_rotated"});
  for (const std::uint64_t n : {4u, 8u, 16u, 32u, 64u}) {
    std::uint64_t records_plain = 0;
    std::uint64_t records_rotated = 0;
    const double plain_us =
        resume_latency_us(tags, n, opt.seed, repeats, 0, &records_plain);
    const double rotated_us = resume_latency_us(tags, n, opt.seed, repeats,
                                                kRotateAfter,
                                                &records_rotated);
    table.begin_row();
    table.add_cell(static_cast<unsigned long long>(n));
    table.add_cell(static_cast<unsigned long long>(records_plain));
    table.add_cell(plain_us, 1);
    table.add_cell(static_cast<unsigned long long>(records_rotated));
    table.add_cell(rotated_us, 1);
  }
  if (opt.csv) {
    table.write_csv(std::cout);
  } else {
    std::cout << "Resume latency (journal replay + state rebuild, best of "
              << repeats << "; rotated = journal_rotate_after "
              << kRotateAfter << "):\n";
    table.print(std::cout);
  }

  // ---- fault-storm soak -----------------------------------------------
  daemon::WarehouseConfig warehouse = make_warehouse(tags);
  warehouse.churn.push_back(
      daemon::ChurnEvent{.epoch = epochs / 4, .enroll = tags / 2});
  warehouse.churn.push_back(daemon::ChurnEvent{.epoch = epochs / 2,
                                               .enroll = 0,
                                               .decommission = 0,
                                               .steal = tags / 8,
                                               .steal_from = 0});
  fault::FaultPlan dead;
  dead.reader_crashes.push_back(fault::CrashWindow{0.0, 0.0});
  for (std::uint64_t e = epochs / 3; e < epochs / 3 + 4; ++e) {
    warehouse.zone_faults.push_back({.epoch = e, .zone = 1, .plan = dead});
  }

  std::string baseline;
  std::vector<daemon::EpochVerdict> baseline_verdicts;
  {
    storage::MemoryBackend backend;
    daemon::MonitorDaemon d(make_config(backend, opt.seed, epochs), warehouse);
    const daemon::DaemonResult result = d.run();
    baseline = daemon::render_alert_history(result.alerts);
    baseline_verdicts = result.epoch_verdicts;
  }

  fault::DaemonFaultPlan storm;
  const fault::DaemonCrashPoint points[] = {
      fault::DaemonCrashPoint::kEpochStart,
      fault::DaemonCrashPoint::kAfterFleetRun,
      fault::DaemonCrashPoint::kBeforeCheckpoint,
      fault::DaemonCrashPoint::kAfterCheckpoint,
  };
  for (std::uint64_t e = 2; e + 2 < epochs; e += 5) {
    storm.crashes.push_back({e, points[(e / 5) % 4]});
  }
  storm.hang_epochs.push_back(epochs / 2 + 1);
  fault::DaemonFaultInjector faults(storm);

  storage::MemoryBackend backend;
  daemon::DaemonConfig config = make_config(backend, opt.seed, epochs);
  config.faults = &faults;
  config.crash_hook = [&backend] { backend.crash(); };
  daemon::MonitorDaemon d(config, warehouse);
  const auto t0 = std::chrono::steady_clock::now();
  const daemon::DaemonResult result = d.run();
  const double soak_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();

  const bool identical =
      daemon::render_alert_history(result.alerts) == baseline &&
      result.epoch_verdicts == baseline_verdicts;
  std::cout << "\nFault-storm soak: " << epochs << " epochs, "
            << result.restarts << " restarts (" << result.crash_restarts
            << " crash, " << result.hang_restarts << " hang), "
            << result.alerts.size() << " alerts ("
            << result.replayed_alerts << " replayed across resumes), "
            << soak_ms << " ms wall\n";
  std::cout << "Kill-resume equivalence: "
            << (identical ? "alert history bit-identical to undisturbed run"
                          : "MISMATCH (lost or duplicated alerts!)")
            << "\n";
  return identical ? EXIT_SUCCESS : EXIT_FAILURE;
}
