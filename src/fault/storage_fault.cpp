#include "fault/storage_fault.h"

#include <algorithm>
#include <cmath>

namespace rfid::fault {

namespace {

/// Bytes of an operation that still make it to storage, rounded down — a torn
/// write never invents data it was not given.
[[nodiscard]] std::size_t keep_bytes(std::size_t size, double fraction) {
  const double clamped = std::clamp(fraction, 0.0, 1.0);
  return static_cast<std::size_t>(
      std::floor(static_cast<double>(size) * clamped));
}

}  // namespace

bool FaultyBackend::arm() {
  ++ops_;
  return plan_.crash_at_op != 0 && ops_ == plan_.crash_at_op;
}

void FaultyBackend::crash_now(std::string_view op) {
  throw CrashInjected("injected crash at mutating op " + std::to_string(ops_) +
                      " (" + std::string(op) + ")");
}

void FaultyBackend::append(const std::string& name, std::string_view bytes) {
  const bool crashing = arm();
  ++appends_;
  if (crashing) {
    if (plan_.crash_before_effect) crash_now("append");
    // Torn write: a prefix of the bytes reaches durable storage before the
    // power cut. Force the prefix through the write cache — the harness's
    // crash() wipes buffered bytes, and a torn frame must survive it for
    // recovery's truncation path to be exercised.
    const std::size_t keep = keep_bytes(bytes.size(), plan_.torn_keep_fraction);
    if (keep > 0) {
      inner_.append(name, bytes.substr(0, keep));
      inner_.flush(name);
    }
    crash_now("append");
  }
  if (plan_.partial_append_at != 0 && appends_ == plan_.partial_append_at) {
    // Disk full: part of the record is written, then the append fails. The
    // process survives and must cope with the torn prefix it left behind.
    const std::size_t keep =
        keep_bytes(bytes.size(), plan_.partial_append_keep_fraction);
    if (keep > 0) inner_.append(name, bytes.substr(0, keep));
    throw storage::IoError("injected short append to " + name);
  }
  inner_.append(name, bytes);
}

void FaultyBackend::flush(const std::string& name) {
  const bool crashing = arm();
  if (crashing && plan_.crash_before_effect) crash_now("flush");
  const bool lying =
      plan_.lying_flush_from_op != 0 && ops_ >= plan_.lying_flush_from_op;
  if (!lying) inner_.flush(name);
  if (crashing) crash_now("flush");
}

void FaultyBackend::rename(const std::string& from, const std::string& to) {
  const bool crashing = arm();
  if (crashing && plan_.crash_before_effect) crash_now("rename");
  inner_.rename(from, to);
  if (crashing) crash_now("rename");
}

void FaultyBackend::remove(const std::string& name) {
  const bool crashing = arm();
  if (crashing && plan_.crash_before_effect) crash_now("remove");
  inner_.remove(name);
  if (crashing) crash_now("remove");
}

}  // namespace rfid::fault
