#include "math/fused_detection.h"

#include <algorithm>
#include <cmath>

#include "math/approximation.h"
#include "math/binomial.h"
#include "util/expect.h"

namespace rfid::math {

namespace {

void validate(const FusedSizingParams& params) {
  RFID_EXPECT(params.readers >= 1, "fused sizing needs at least one reader");
  // The masking guarantee is the strict majority: with 2a >= k the faulty
  // coalition can out-vote the honest readers and the analysis is void.
  RFID_EXPECT(2 * params.assumed_faulty < params.readers,
              "assumed_faulty must be a strict minority of the readers");
  RFID_EXPECT(params.slot_loss >= 0.0 && params.slot_loss < 1.0,
              "slot_loss must be in [0, 1)");
  RFID_EXPECT(params.alert_budget > 0.0 && params.alert_budget < 1.0,
              "alert_budget must be in (0, 1)");
}

}  // namespace

double fused_slot_false_empty(const FusedSizingParams& params) {
  validate(params);
  const std::uint32_t honest = params.readers - params.assumed_faulty;
  const std::uint32_t votes_needed = fused_vote_threshold(params.readers);
  if (params.slot_loss == 0.0 && honest >= votes_needed) return 0.0;
  // P(Binom(honest, 1-p) < votes_needed); votes_needed is small, sum the pmf.
  double below = 0.0;
  for (std::uint32_t j = 0; j < votes_needed && j <= honest; ++j) {
    below += binomial_pmf(honest, j, 1.0 - params.slot_loss);
  }
  return std::min(below, 1.0);
}

std::uint64_t fused_mismatch_threshold(std::uint64_t n, std::uint64_t f,
                                       const FusedSizingParams& params) {
  RFID_EXPECT(f >= 1, "frame size must be positive");
  const double eps = fused_slot_false_empty(params);
  if (eps <= 0.0) return 1;
  const std::uint64_t busy_bound = std::min(n, f);
  if (busy_bound == 0) return 1;
  // Smallest T with P(X >= T) <= budget, i.e. cdf(T-1) >= 1 - budget.
  const double target = 1.0 - params.alert_budget;
  std::uint64_t threshold = busy_bound + 1;  // unreachable: never alarms
  double cdf = 0.0;
  for_each_binomial_outcome(busy_bound, eps, [&](std::uint64_t k, double pmf) {
    cdf += pmf;
    if (threshold > busy_bound && cdf >= target) threshold = k + 1;
  });
  return threshold;
}

double fused_detection_probability(std::uint64_t n, std::uint64_t x,
                                   std::uint64_t f,
                                   const FusedSizingParams& params,
                                   EmptySlotModel model) {
  RFID_EXPECT(x <= n, "cannot have more missing tags than tags");
  RFID_EXPECT(f >= 1, "frame size must be positive");
  if (x == 0) return 0.0;

  const std::uint64_t threshold = fused_mismatch_threshold(n, f, params);
  if (threshold > x) return 0.0;  // even all x landing reads as noise

  const double p = empty_slot_probability(n - x, f, model);
  const double fd = static_cast<double>(f);
  const double xd = static_cast<double>(x);

  // miss = Sigma_i P(N0 = i) * P(Binom(x, i/f) < T) over the significant
  // window of N0 ~ Binom(f, p). The threshold==1 branch repeats Eq. 2's
  // exact arithmetic so the trustworthy-reader reduction is bit-identical
  // to detection_probability, optimizer boundaries included.
  double miss = 0.0;
  for_each_binomial_outcome(f, p, [&](std::uint64_t i, double pmf) {
    if (i >= f) return;  // every missing tag lands visibly; detection certain
    const double frac = static_cast<double>(i) / fd;
    double below;
    if (threshold == 1) {
      below = std::exp(xd * std::log1p(-frac));
    } else if (frac <= 0.0) {
      below = 1.0;  // nothing lands; mismatches stay below any threshold
    } else {
      below = 0.0;
      for (std::uint64_t j = 0; j < threshold && j <= x; ++j) {
        below += binomial_pmf(x, j, frac);
      }
      below = std::min(below, 1.0);
    }
    miss += pmf * below;
  });
  return 1.0 - std::clamp(miss, 0.0, 1.0);
}

TrpPlan optimize_fused_trp_frame(std::uint64_t n, std::uint64_t m, double alpha,
                                 const FusedSizingParams& params,
                                 EmptySlotModel model) {
  RFID_EXPECT(n >= 1, "need at least one tag");
  RFID_EXPECT(m + 1 <= n, "tolerance m must satisfy m + 1 <= n");
  RFID_EXPECT(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
  validate(params);

  const auto pred = [&](std::uint32_t f) {
    return fused_detection_probability(n, m + 1, f, params, model) > alpha;
  };
  // The single-reader closed form is a lower bound on the fused optimum
  // (noise only raises T); it still lands near enough to seed the search.
  const std::uint32_t hint = approximate_trp_frame(n, m, alpha);
  TrpPlan plan;
  plan.frame_size = minimal_satisfying_frame(pred, hint);
  plan.predicted_detection =
      fused_detection_probability(n, m + 1, plan.frame_size, params, model);
  return plan;
}

}  // namespace rfid::math
