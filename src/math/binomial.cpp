#include "math/binomial.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/expect.h"

namespace rfid::math {

namespace {

// std::lgamma writes the result's sign into the global `signgam`, which is
// a data race when fleet workers size frames on several threads at once.
// lgamma_r takes the sign out-parameter instead; our arguments are always
// >= 1 so the sign is never consulted.
double lgamma_threadsafe(double x) {
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return ::lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

}  // namespace

double log_binomial_coefficient(std::uint64_t n, std::uint64_t k) {
  RFID_EXPECT(k <= n, "binomial coefficient requires k <= n");
  return lgamma_threadsafe(static_cast<double>(n) + 1.0) -
         lgamma_threadsafe(static_cast<double>(k) + 1.0) -
         lgamma_threadsafe(static_cast<double>(n - k) + 1.0);
}

double log_binomial_pmf(std::uint64_t n, std::uint64_t k, double p) {
  RFID_EXPECT(k <= n, "binomial pmf requires k <= n");
  RFID_EXPECT(p >= 0.0 && p <= 1.0, "probability out of [0,1]");
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  if (p == 0.0) return k == 0 ? 0.0 : kNegInf;
  if (p == 1.0) return k == n ? 0.0 : kNegInf;
  return log_binomial_coefficient(n, k) +
         static_cast<double>(k) * std::log(p) +
         static_cast<double>(n - k) * std::log1p(-p);
}

double binomial_pmf(std::uint64_t n, std::uint64_t k, double p) {
  return std::exp(log_binomial_pmf(n, k, p));
}

OutcomeRange significant_range(std::uint64_t n, double p, double tail_epsilon) {
  RFID_EXPECT(p >= 0.0 && p <= 1.0, "probability out of [0,1]");
  RFID_EXPECT(tail_epsilon > 0.0 && tail_epsilon < 1.0, "epsilon out of (0,1)");
  if (p == 0.0) return {0, 0};
  if (p == 1.0) return {n, n};
  const double mean = static_cast<double>(n) * p;
  const double sigma = std::sqrt(static_cast<double>(n) * p * (1.0 - p));
  // Gaussian tail bound: P(|X−mean| > z·sigma) <= 2·exp(−z²/2); solve for z
  // and pad generously. The +3 absolute slack covers tiny-sigma cases.
  const double z = std::sqrt(-2.0 * std::log(tail_epsilon / 2.0)) + 1.0;
  const double lo_f = std::floor(mean - z * sigma - 3.0);
  const double hi_f = std::ceil(mean + z * sigma + 3.0);
  OutcomeRange range;
  range.lo = lo_f <= 0.0 ? 0 : static_cast<std::uint64_t>(lo_f);
  range.hi = hi_f >= static_cast<double>(n) ? n : static_cast<std::uint64_t>(hi_f);
  range.lo = std::min(range.lo, n);
  return range;
}

}  // namespace rfid::math
