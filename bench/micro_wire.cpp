// Microbenchmarks for the wire layer: frame encode/decode and a complete
// message-driven monitoring round on perfect links.
#include <benchmark/benchmark.h>

#include "protocol/trp.h"
#include "tag/tag_set.h"
#include "util/random.h"
#include "wire/messages.h"
#include "wire/session.h"

namespace {

using namespace rfid;

void BM_EncodeBitstringReport(benchmark::State& state) {
  const auto bits_count = static_cast<std::size_t>(state.range(0));
  bits::Bitstring bs(bits_count);
  for (std::size_t i = 0; i < bits_count; i += 3) bs.set(i);
  const wire::BitstringReport report{"group", 1, bs, 1000.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::encode(report));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bits_count / 8));
}

void BM_DecodeBitstringReport(benchmark::State& state) {
  const auto bits_count = static_cast<std::size_t>(state.range(0));
  bits::Bitstring bs(bits_count);
  for (std::size_t i = 0; i < bits_count; i += 3) bs.set(i);
  const auto frame = wire::encode(wire::BitstringReport{"group", 1, bs, 1000.0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::decode_bitstring_report(frame));
  }
}

void BM_EncodeUtrpChallenge(benchmark::State& state) {
  const auto f = static_cast<std::uint32_t>(state.range(0));
  wire::UtrpChallengeMsg msg;
  msg.round = 1;
  msg.challenge.frame_size = f;
  util::Rng rng(1);
  for (std::uint32_t i = 0; i < f; ++i) msg.challenge.seeds.push_back(rng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::encode(msg));
  }
}

void BM_FullSessionRound(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  util::Rng rng(2);
  const tag::TagSet set = tag::TagSet::make_random(n, rng);
  const protocol::TrpServer server(set.ids(),
                                   {.tolerated_missing = 10, .confidence = 0.95});
  for (auto _ : state) {
    sim::EventQueue queue;
    benchmark::DoNotOptimize(
        wire::run_trp_session(queue, server, set.tags(), 1, {}, rng));
  }
}

}  // namespace

BENCHMARK(BM_EncodeBitstringReport)->Arg(1024)->Arg(16384);
BENCHMARK(BM_DecodeBitstringReport)->Arg(1024)->Arg(16384);
BENCHMARK(BM_EncodeUtrpChallenge)->Arg(512)->Arg(4096);
BENCHMARK(BM_FullSessionRound)->Arg(100)->Arg(1000);
