#include "daemon/daemon.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <utility>

#include "obs/catalog.h"
#include "server/group_planner.h"
#include "util/expect.h"
#include "util/random.h"

namespace rfid::daemon {

namespace {

constexpr std::uint64_t kPopulationSalt = 0x706f70756cULL;  // "popul"
constexpr std::uint64_t kChurnSalt = 0x636875726eULL;       // "churn"
constexpr std::uint64_t kEpochSalt = 0x65706f6368ULL;       // "epoch"

[[nodiscard]] std::string_view restart_cause(DaemonEventKind kind) noexcept {
  return kind == DaemonEventKind::kHangRestart ? "hang" : "crash";
}

}  // namespace

std::string_view to_string(EpochVerdict verdict) noexcept {
  switch (verdict) {
    case EpochVerdict::kIntact: return "intact";
    case EpochVerdict::kViolated: return "violated";
    case EpochVerdict::kInconclusive: return "inconclusive";
    case EpochVerdict::kDegraded: return "degraded";
  }
  return "unknown";
}

std::string_view to_string(DaemonAlertKind kind) noexcept {
  switch (kind) {
    case DaemonAlertKind::kZoneViolated: return "zone_violated";
    case DaemonAlertKind::kZoneEscalated: return "zone_escalated";
    case DaemonAlertKind::kZoneQuarantined: return "zone_quarantined";
    case DaemonAlertKind::kZoneRecovered: return "zone_recovered";
    case DaemonAlertKind::kReplanned: return "replanned";
    case DaemonAlertKind::kStaleJournalQuarantined:
      return "stale_journal_quarantined";
    case DaemonAlertKind::kReaderQuarantined: return "reader_quarantined";
    case DaemonAlertKind::kReaderRecovered: return "reader_recovered";
  }
  return "unknown";
}

std::string_view to_string(DaemonEventKind kind) noexcept {
  switch (kind) {
    case DaemonEventKind::kCrashRestart: return "crash_restart";
    case DaemonEventKind::kHangRestart: return "hang_restart";
    case DaemonEventKind::kGaveUp: return "gave_up";
  }
  return "unknown";
}

std::string render_alert_history(std::span<const DaemonAlert> alerts) {
  std::string out;
  for (const DaemonAlert& alert : alerts) {
    out += '#';
    out += std::to_string(alert.sequence);
    out += " epoch ";
    out += std::to_string(alert.epoch);
    out += " [";
    out += to_string(alert.kind);
    out += "] zone ";
    out += std::to_string(alert.zone);
    out += ": ";
    out += alert.detail;
    out += '\n';
    // Named stolen tags (identification drill-down): part of the canonical
    // rendering, so kill-resume equivalence covers them too. Absent (and
    // the rendering byte-identical to older daemons') when the feature is
    // off or the alert predates it.
    for (const tag::TagId& id : alert.missing_tags) {
      out += "    missing ";
      out += id.to_string();
      out += '\n';
    }
  }
  return out;
}

MonitorDaemon::MonitorDaemon(DaemonConfig config, WarehouseConfig warehouse)
    : config_(std::move(config)), warehouse_(std::move(warehouse)) {
  RFID_EXPECT(config_.backend != nullptr, "daemon needs a storage backend");
  RFID_EXPECT(config_.epochs >= 1, "daemon needs at least one epoch");
  RFID_EXPECT(config_.debounce_epochs >= 1, "debounce_epochs must be >= 1");
  RFID_EXPECT(config_.quarantine_after_epochs >= config_.debounce_epochs,
              "quarantine must not precede escalation");
  RFID_EXPECT(config_.quarantine_cooldown_epochs >= 1,
              "quarantine_cooldown_epochs must be >= 1");
  RFID_EXPECT(warehouse_.initial_tags >= 1, "warehouse needs tags");
  RFID_EXPECT(!config_.name.empty(), "daemon needs a name");
}

MonitorDaemon::~MonitorDaemon() = default;

std::uint64_t MonitorDaemon::config_fingerprint() const {
  // Everything that shapes epoch results and alert decisions. A resumed
  // journal whose recording daemon disagreed on any of these would replay
  // health machines for zones that no longer mean the same thing — it is
  // quarantined instead (same |1-vs-0 sentinel convention as the fleet's).
  std::uint64_t h = 0x6461656d6f6eULL;  // "daemon"
  h = util::derive_seed(h, warehouse_.initial_tags, warehouse_.tolerance);
  h = util::derive_seed(h, warehouse_.zone_capacity, warehouse_.rounds);
  h = util::derive_seed(h, static_cast<std::uint64_t>(warehouse_.protocol),
                        config_.max_zone_attempts);
  h = util::derive_seed(h, config_.debounce_epochs,
                        config_.quarantine_after_epochs);
  h = util::derive_seed(h, config_.quarantine_cooldown_epochs,
                        config_.faults_on_retries ? 1 : 0);
  for (const ChurnEvent& event : warehouse_.churn) {
    h = util::derive_seed(h, event.epoch, event.enroll);
    h = util::derive_seed(h, event.decommission, event.steal);
    h = util::derive_seed(h, event.steal_from, 1);
  }
  for (const WarehouseConfig::ZoneFault& zf : warehouse_.zone_faults) {
    h = util::derive_seed(h, zf.epoch, zf.zone);
  }
  const fusion::FusionConfig& fu = warehouse_.fusion;
  h = util::derive_seed(h, fu.readers, fu.quorum);
  h = util::derive_seed(h, fu.assumed_faulty, fu.suspect_after_rounds);
  h = util::derive_seed(h, std::bit_cast<std::uint64_t>(fu.slot_loss),
                        std::bit_cast<std::uint64_t>(fu.alert_budget));
  h = util::derive_seed(h, std::bit_cast<std::uint64_t>(fu.trust_decay),
                        std::bit_cast<std::uint64_t>(fu.min_trust));
  h = util::derive_seed(
      h, std::bit_cast<std::uint64_t>(fu.suspect_overruled), 2);
  for (const auto& [zone, reader] : warehouse_.dishonest_readers) {
    h = util::derive_seed(h, zone, reader);
  }
  // journal_rotate_after is deliberately absent: rotation changes the
  // journal's layout, never its replay, so a restart may change the knob
  // and still resume.
  return h | 1;
}

MonitorDaemon::Population MonitorDaemon::population_at(
    std::uint64_t epoch) const {
  // The population is a pure function of (seed, churn script, epoch): the
  // initial audit and every enrollment draw from seeds derived here, so a
  // resumed daemon re-derives tag-for-tag the population the crashed one
  // was monitoring.
  Population population;
  {
    util::Rng rng(util::derive_seed(config_.seed, 0, kPopulationSalt));
    tag::TagSet initial =
        tag::TagSet::make_random(warehouse_.initial_tags, rng);
    population.tags.assign(initial.tags().begin(), initial.tags().end());
  }
  population.stolen.assign(population.tags.size(), false);

  for (const ChurnEvent& event : warehouse_.churn) {
    if (event.epoch > epoch) continue;
    const std::uint64_t retire = std::min<std::uint64_t>(
        event.decommission, population.tags.size());
    population.tags.erase(
        population.tags.begin(),
        population.tags.begin() + static_cast<std::ptrdiff_t>(retire));
    population.stolen.erase(
        population.stolen.begin(),
        population.stolen.begin() + static_cast<std::ptrdiff_t>(retire));
    if (event.enroll > 0) {
      util::Rng rng(util::derive_seed(config_.seed, event.epoch, kChurnSalt));
      tag::TagSet fresh = tag::TagSet::make_random(
          static_cast<std::size_t>(event.enroll), rng);
      for (const tag::Tag& t : fresh.tags()) population.tags.push_back(t);
      population.stolen.resize(population.tags.size(), false);
    }
    for (std::uint64_t i = 0; i < event.steal; ++i) {
      const std::uint64_t index = event.steal_from + i;
      if (index < population.stolen.size()) {
        population.stolen[static_cast<std::size_t>(index)] = true;
      }
    }
  }
  return population;
}

void MonitorDaemon::resume_from_journal(DaemonResult& result) {
  const auto t0 = std::chrono::steady_clock::now();
  const storage::DaemonStartRecord start{config_.seed, config_.name,
                                         config_fingerprint()};
  storage::DaemonReplay replay = journal_->open(start);

  // In-memory state is a cache of the journal, never the truth: rebuild it
  // wholesale so the daemon after a crash is in exactly the state the
  // journal proves, nothing more.
  healths_.clear();
  alerts_.clear();
  pending_alerts_.clear();
  verdicts_.clear();
  next_alert_sequence_ = 0;
  // The journal hands back already-folded state (O(1) in the daemon's
  // lifetime once rotation is on): adopting it IS the replay.
  verdicts_.reserve(replay.verdicts.size());
  for (const std::uint8_t verdict : replay.verdicts) {
    verdicts_.push_back(static_cast<EpochVerdict>(verdict));
  }
  healths_ = std::move(replay.zones);
  alerts_ = std::move(replay.alerts);
  next_alert_sequence_ = replay.next_alert_sequence;
  const std::uint64_t restored = alerts_.size();
  epochs_committed_.store(replay.verdicts.size(), std::memory_order_release);

  if (replay.stale) {
    // The refusal itself must reach the operator — but an alert is only
    // durable inside a checkpoint, so park it for the next epoch's record.
    storage::DaemonAlertRecord pending;
    pending.kind =
        static_cast<std::uint8_t>(DaemonAlertKind::kStaleJournalQuarantined);
    pending.detail =
        std::to_string(replay.stale_checkpoints) +
        " checkpointed epoch(s) from a different monitoring config were "
        "quarantined; monitoring restarts at epoch 0";
    pending_alerts_.push_back(std::move(pending));
  }

  result.replayed_alerts += restored;
  const double resume_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - t0)
          .count();
  result.last_resume_us = resume_us;
  if (config_.metrics != nullptr) {
    if (restored > 0) {
      obs::catalog::daemon_replayed_alerts_total(*config_.metrics)
          .inc(restored);
    }
    obs::catalog::daemon_resume_duration_us(*config_.metrics)
        .observe(resume_us);
  }
}

void MonitorDaemon::sync_registry(const tag::TagSet& tags,
                                  const server::GroupPlan& plan) {
  const std::vector<tag::TagSet> slices = server::split_by_plan(tags, plan);
  for (std::size_t z = 0; z < slices.size(); ++z) {
    server::GroupConfig cfg;
    cfg.name = config_.name + "/zone-" + std::to_string(z);
    cfg.policy = protocol::MonitoringPolicy{plan.zones[z].tolerance,
                                            warehouse_.alpha, warehouse_.model};
    cfg.protocol = warehouse_.protocol == fleet::Protocol::kUtrp
                       ? server::ProtocolKind::kUtrp
                       : server::ProtocolKind::kTrp;
    cfg.comm_budget = warehouse_.comm_budget;
    cfg.slack_slots = warehouse_.slack_slots;
    if (z < registry_zones_.size()) {
      // Same zone identity, fresh membership — re-enrollment in place, the
      // whole point of not rebuilding the server across re-plans.
      registry_.re_enroll(registry_zones_[z], slices[z], std::move(cfg));
    } else {
      registry_zones_.push_back(registry_.enroll(slices[z], std::move(cfg)));
    }
  }
  for (std::size_t z = slices.size(); z < registry_zones_.size(); ++z) {
    if (registry_.active(registry_zones_[z])) {
      registry_.decommission(registry_zones_[z]);
    }
  }
}

void MonitorDaemon::run_epoch(std::uint64_t epoch) {
  if (abort_.load(std::memory_order_acquire) ||
      (config_.abort != nullptr &&
       config_.abort->load(std::memory_order_acquire))) {
    throw fault::CrashInjected("monitor killed before epoch " +
                               std::to_string(epoch));
  }
  fault::DaemonFaultInjector* faults = config_.faults;
  if (faults != nullptr) {
    faults->at(epoch, fault::DaemonCrashPoint::kEpochStart);
    faults->maybe_hang(epoch);
  }

  // Re-audit: apply churn and re-plan so Σ m_i = M still covers whatever
  // the population has become. The tolerance clamps to keep the planner's
  // M + zones <= N invariant alive through heavy decommissioning.
  Population population = population_at(epoch);
  const std::uint64_t n = population.tags.size();
  RFID_EXPECT(n > 0, "churn script emptied the population");
  const std::uint64_t zones_estimate =
      warehouse_.zone_capacity == 0
          ? 1
          : (n + warehouse_.zone_capacity - 1) / warehouse_.zone_capacity;
  std::uint64_t tolerance = warehouse_.tolerance;
  if (tolerance + zones_estimate > n) {
    tolerance = n > zones_estimate ? n - zones_estimate : 0;
  }
  const server::GroupPlan plan =
      server::plan_groups({.total_tags = n,
                           .total_tolerance = tolerance,
                           .alpha = warehouse_.alpha,
                           .max_group_size = warehouse_.zone_capacity,
                           .model = warehouse_.model});
  const std::size_t zone_count = plan.zones.size();

  tag::TagSet tags(std::move(population.tags));
  sync_registry(tags, plan);

  fleet::InventorySpec spec;
  spec.name = "warehouse";
  spec.protocol = warehouse_.protocol;
  spec.plan = plan;
  spec.alpha = warehouse_.alpha;
  spec.model = warehouse_.model;
  spec.comm_budget = warehouse_.comm_budget;
  spec.slack_slots = warehouse_.slack_slots;
  spec.rounds = warehouse_.rounds;
  spec.session = warehouse_.session;
  for (std::size_t i = 0; i < population.stolen.size(); ++i) {
    if (population.stolen[i]) spec.stolen.push_back(i);
  }
  for (const WarehouseConfig::ZoneFault& zf : warehouse_.zone_faults) {
    if (zf.epoch == epoch && zf.zone < zone_count) {
      spec.zone_faults.emplace_back(zf.zone, zf.plan);
    }
  }
  spec.fusion = warehouse_.fusion;
  spec.identify = warehouse_.identify;
  const std::uint32_t k = warehouse_.fusion.readers;
  for (const auto& [zone, reader] : warehouse_.dishonest_readers) {
    if (zone < zone_count && reader < k) {
      spec.dishonest_readers.emplace_back(zone, reader);
    }
  }
  if (k > 1) {
    // Quarantined readers sit out the scan entirely — no evidence, no
    // vote, no chance to poison the fusion while on the bench.
    for (std::size_t z = 0; z < std::min<std::size_t>(healths_.size(),
                                                      zone_count); ++z) {
      for (std::size_t r = 0; r < healths_[z].readers.size(); ++r) {
        if (healths_[z].readers[r].quarantined) {
          spec.excluded_readers.emplace_back(z,
                                             static_cast<std::uint32_t>(r));
        }
      }
    }
  }
  spec.tags = std::move(tags);

  fleet::FleetConfig fleet_config;
  fleet_config.seed = util::derive_seed(config_.seed, epoch + 1, kEpochSalt);
  fleet_config.threads = config_.threads;
  fleet_config.max_zone_attempts = config_.max_zone_attempts;
  fleet_config.faults_on_retries = config_.faults_on_retries;
  fleet_config.fleet_name = config_.name + "/epoch-" + std::to_string(epoch);
  fleet_config.journal_backend = config_.backend;
  fleet_config.journal_name = config_.fleet_journal_name;
  fleet_config.abort = &abort_;

  fleet::FleetOrchestrator orchestrator(std::move(fleet_config));
  orchestrator.submit(std::move(spec));
  fleet::FleetResult fleet_result = orchestrator.run();

  if (faults != nullptr) {
    faults->at(epoch, fault::DaemonCrashPoint::kAfterFleetRun);
  }
  if (fleet_result.aborted) {
    // The watchdog pulled the kill switch mid-run; unwind as the crash the
    // supervisor is already expecting. Nothing was journaled for this
    // epoch, so the restart re-runs it (resuming finished zones from the
    // fleet journal).
    throw fault::CrashInjected("epoch " + std::to_string(epoch) +
                               " aborted by supervisor");
  }

  // ---- decide (nothing in-memory mutates until the checkpoint holds) ----
  const std::vector<fleet::ZoneReport>& reports =
      fleet_result.inventories.at(0).zones;
  std::vector<storage::DaemonZoneHealthRecord> healths = healths_;
  std::vector<storage::DaemonAlertRecord> raised;
  std::uint64_t sequence = next_alert_sequence_;
  const auto raise = [&](DaemonAlertKind kind, std::uint64_t zone,
                         std::string detail) {
    storage::DaemonAlertRecord alert;
    alert.sequence = sequence++;
    alert.kind = static_cast<std::uint8_t>(kind);
    alert.epoch = epoch;
    alert.zone = zone;
    alert.detail = std::move(detail);
    raised.push_back(std::move(alert));
  };

  for (const storage::DaemonAlertRecord& pending : pending_alerts_) {
    raise(static_cast<DaemonAlertKind>(pending.kind), pending.zone,
          pending.detail);
  }
  for (const fleet::FleetAlert& alert : fleet_result.alerts) {
    if (alert.kind == fleet::AlertKind::kRecoveredRunQuarantined) {
      raise(DaemonAlertKind::kStaleJournalQuarantined, 0,
            "fleet journal: " + alert.detail);
    }
  }
  if (!healths.empty() && healths.size() != zone_count) {
    raise(DaemonAlertKind::kReplanned, 0,
          "zone count changed from " + std::to_string(healths.size()) +
              " to " + std::to_string(zone_count) +
              "; zone health machines reset");
    healths.clear();
  }
  healths.resize(zone_count);

  bool theft = false;
  bool healthy_miss = false;
  bool quarantined_miss = false;
  std::uint64_t readers_quarantined = 0;
  for (std::size_t z = 0; z < zone_count; ++z) {
    const fleet::ZoneReport& report = reports[z];
    storage::DaemonZoneHealthRecord& health = healths[z];
    const bool was_quarantined = health.quarantined;

    // Reader tier first: a zone can verify intact while one reader inside
    // it is being persistently outvoted — exactly the adversary the bench
    // exists for. A reader suspect (or incomplete) quarantine_after_epochs
    // epochs in a row sits out subsequent scans; after the cooldown it is
    // reinstated (benched readers produce no evidence to re-judge them by,
    // so parole is the only way back). The last active reader is never
    // benched — a zone must keep at least one working radio.
    if (k > 1) {
      health.readers.resize(k);
      std::uint32_t active = 0;
      for (const storage::DaemonReaderHealthRecord& rh : health.readers) {
        if (!rh.quarantined) ++active;
      }
      for (std::uint32_t r = 0; r < k; ++r) {
        storage::DaemonReaderHealthRecord& rh = health.readers[r];
        if (rh.quarantined) {
          if (epoch - rh.quarantined_at >=
              config_.quarantine_cooldown_epochs) {
            raise(DaemonAlertKind::kReaderRecovered, z,
                  "reader " + std::to_string(r) +
                      " reinstated; quarantined since epoch " +
                      std::to_string(rh.quarantined_at));
            rh = storage::DaemonReaderHealthRecord{};
            ++active;
          }
          continue;
        }
        const bool bad =
            r < report.readers.size() &&
            (report.readers[r].suspect || !report.readers[r].completed);
        if (bad) {
          ++rh.bad_streak;
        } else {
          rh.bad_streak = 0;
        }
        if (rh.bad_streak >= config_.quarantine_after_epochs && active > 1) {
          rh.quarantined = true;
          rh.quarantined_at = epoch;
          --active;
          ++readers_quarantined;
          raise(DaemonAlertKind::kReaderQuarantined, z,
                "reader " + std::to_string(r) + " suspect or incomplete " +
                    std::to_string(rh.bad_streak) +
                    " consecutive epoch(s); excluded from scans until "
                    "cooldown");
        }
      }
    }

    if (report.status == fleet::ZoneStatus::kIntact) {
      health.miss_streak = 0;
      if (health.quarantined) {
        ++health.intact_streak;
        if (health.intact_streak >= config_.quarantine_cooldown_epochs) {
          raise(DaemonAlertKind::kZoneRecovered, z,
                "recovered after " + std::to_string(health.intact_streak) +
                    " intact epoch(s); quarantined since epoch " +
                    std::to_string(health.quarantined_at));
          // Zone forgiveness must not reinstate benched readers: the
          // reader tier keeps its own clock.
          std::vector<storage::DaemonReaderHealthRecord> readers =
              std::move(health.readers);
          health = storage::DaemonZoneHealthRecord{};
          health.readers = std::move(readers);
        }
      } else {
        health.intact_streak = 0;
        health.violated = false;  // incident over; a new one re-alerts
      }
      continue;
    }
    if (report.status == fleet::ZoneStatus::kDegraded) {
      // Rounds committed below the q-of-k quorum but no committed round
      // showed theft: evidence exists (not a miss — the zone machine holds
      // where it is), yet the guarantee stands on fewer readers than
      // configured, so the epoch verdict degrades.
      health.intact_streak = 0;
      quarantined_miss = true;
      continue;
    }

    health.intact_streak = 0;
    ++health.miss_streak;
    if (report.status == fleet::ZoneStatus::kViolated) {
      theft = true;
      if (!health.violated) {
        health.violated = true;
        const fleet::ZoneIdentification& id = report.identification;
        std::string detail = "theft evidence: zone verdict violated";
        if (id.ran) {
          detail += "; identified " + std::to_string(id.missing.size()) +
                    " missing tag(s) [" + id.protocol + "], " +
                    std::to_string(id.unresolved) + " unresolved";
        }
        raise(DaemonAlertKind::kZoneViolated, z, std::move(detail));
        if (id.ran) raised.back().missing = id.missing;
      }
    } else if (was_quarantined) {
      quarantined_miss = true;
    } else {
      healthy_miss = true;
    }
    if (health.miss_streak == config_.debounce_epochs) {
      raise(DaemonAlertKind::kZoneEscalated, z,
            "missed " + std::to_string(health.miss_streak) +
                " consecutive epoch(s); last failure: " +
                std::string(wire::to_string(report.last_failure)));
    }
    if (!health.quarantined &&
        health.miss_streak >= config_.quarantine_after_epochs) {
      health.quarantined = true;
      health.quarantined_at = epoch;
      raise(DaemonAlertKind::kZoneQuarantined, z,
            "quarantined after " + std::to_string(health.miss_streak) +
                " consecutive misses; failures now degrade (not void) the "
                "epoch verdict");
    }
  }

  const EpochVerdict verdict = theft            ? EpochVerdict::kViolated
                               : healthy_miss   ? EpochVerdict::kInconclusive
                               : quarantined_miss ? EpochVerdict::kDegraded
                                                  : EpochVerdict::kIntact;

  storage::DaemonCheckpointRecord record;
  record.epoch = epoch;
  record.verdict = static_cast<std::uint8_t>(verdict);
  record.next_alert_sequence = sequence;
  record.zones = healths;
  record.alerts = raised;

  if (faults != nullptr) {
    faults->at(epoch, fault::DaemonCrashPoint::kBeforeCheckpoint);
  }
  journal_->checkpoint(record);
  if (faults != nullptr) {
    faults->at(epoch, fault::DaemonCrashPoint::kAfterCheckpoint);
  }

  // ---- commit (the epoch is durable; in-memory state catches up) ----
  healths_ = std::move(healths);
  for (storage::DaemonAlertRecord& alert : raised) {
    alerts_.push_back(std::move(alert));
  }
  pending_alerts_.clear();
  verdicts_.push_back(verdict);
  next_alert_sequence_ = sequence;
  if (config_.metrics != nullptr) {
    obs::MetricsRegistry& m = *config_.metrics;
    obs::catalog::daemon_epochs_total(m, to_string(verdict)).inc();
    obs::catalog::daemon_checkpoints_total(m).inc();
    for (const storage::DaemonAlertRecord& alert : record.alerts) {
      obs::catalog::daemon_alerts_total(
          m, to_string(static_cast<DaemonAlertKind>(alert.kind)))
          .inc();
    }
    if (readers_quarantined > 0) {
      obs::catalog::fusion_readers_quarantined_total(m).inc(
          readers_quarantined);
    }
  }
  epochs_committed_.store(epoch + 1, std::memory_order_release);
  {
    // Empty critical section: pairs the progress publication with the
    // watchdog's predicate re-check so the notify cannot race past it.
    const std::lock_guard<std::mutex> lock(wd_mu_);
  }
  wd_cv_.notify_all();
}

void MonitorDaemon::monitor_main() {
  try {
    while (epochs_committed_.load(std::memory_order_acquire) <
           config_.epochs) {
      run_epoch(epochs_committed_.load(std::memory_order_acquire));
    }
  } catch (...) {
    monitor_error_ = std::current_exception();
  }
  {
    const std::lock_guard<std::mutex> lock(wd_mu_);
    monitor_done_ = true;
  }
  wd_cv_.notify_all();
}

void MonitorDaemon::supervise() {
  std::unique_lock<std::mutex> lock(wd_mu_);
  std::uint64_t last = epochs_committed_.load(std::memory_order_acquire);
  const auto hang = std::chrono::milliseconds(config_.hang_timeout_ms);
  auto deadline = std::chrono::steady_clock::now() + hang;
  // Kill cooperatively — the abort switch drains the fleet run, the
  // injector kill wakes a scripted hang — then wait for the unwind.
  const auto kill_and_wait = [&] {
    abort_.store(true, std::memory_order_release);
    if (config_.faults != nullptr) config_.faults->kill();
    wd_cv_.wait(lock, [this] { return monitor_done_; });
  };
  while (!monitor_done_) {
    // With an external stop switch wired in, wake in short slices so a
    // blown drain budget interrupts the watch mid-epoch instead of waiting
    // for the next checkpoint or the hang deadline.
    auto wake_at = deadline;
    if (config_.abort != nullptr) {
      wake_at = std::min(wake_at, std::chrono::steady_clock::now() +
                                      std::chrono::milliseconds(10));
    }
    (void)wd_cv_.wait_until(lock, wake_at, [&] {
      return monitor_done_ ||
             epochs_committed_.load(std::memory_order_acquire) != last;
    });
    if (monitor_done_) break;
    if (config_.abort != nullptr &&
        config_.abort->load(std::memory_order_acquire)) {
      // External stop: unwind the monitor; run() gives up, no restart.
      kill_and_wait();
      break;
    }
    if (epochs_committed_.load(std::memory_order_acquire) != last) {
      last = epochs_committed_.load(std::memory_order_acquire);
      deadline = std::chrono::steady_clock::now() + hang;
      continue;
    }
    if (std::chrono::steady_clock::now() < deadline) continue;  // slice wake
    // The progress deadline passed with no checkpoint: the monitor is
    // wedged.
    kill_requested_ = true;
    kill_and_wait();
  }
}

DaemonResult MonitorDaemon::run() {
  RFID_EXPECT(!ran_, "run() may only be called once");
  ran_ = true;

  journal_ = std::make_unique<storage::DaemonJournal>(
      *config_.backend, config_.journal_name, config_.journal_rotate_after);
  DaemonResult result;
  std::uint64_t backoff_ms = config_.backoff_initial_ms;

  // Books one supervised death (crash or hang), applies backoff, and
  // reports whether the daemon may try again.
  const auto register_restart = [&](DaemonEventKind cause) -> bool {
    result.events.push_back(DaemonEvent{
        cause, epochs_committed_.load(std::memory_order_acquire)});
    ++result.restarts;
    if (cause == DaemonEventKind::kHangRestart) {
      ++result.hang_restarts;
    } else {
      ++result.crash_restarts;
    }
    if (config_.metrics != nullptr) {
      obs::catalog::daemon_restarts_total(*config_.metrics,
                                          restart_cause(cause))
          .inc();
    }
    if (result.restarts > config_.max_restarts) {
      result.gave_up = true;
      result.events.push_back(DaemonEvent{
          DaemonEventKind::kGaveUp,
          epochs_committed_.load(std::memory_order_acquire)});
      return false;
    }
    if (config_.crash_hook) config_.crash_hook();
    if (config_.faults != nullptr) config_.faults->reset_kill();
    abort_.store(false, std::memory_order_release);
    if (backoff_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    }
    backoff_ms = std::min(std::max<std::uint64_t>(backoff_ms, 1) * 2,
                          std::max<std::uint64_t>(config_.backoff_cap_ms, 1));
    return true;
  };

  for (bool alive = true; alive;) {
    // Resume is itself under supervision: a crash while opening or
    // compacting the journal is still the process dying, and the next life
    // starts from whatever the backend durably holds.
    try {
      resume_from_journal(result);
    } catch (const fault::CrashInjected&) {
      alive = register_restart(DaemonEventKind::kCrashRestart);
      continue;
    }
    if (epochs_committed_.load(std::memory_order_acquire) >= config_.epochs) {
      break;
    }

    {
      const std::lock_guard<std::mutex> lock(wd_mu_);
      monitor_done_ = false;
      kill_requested_ = false;
    }
    monitor_error_ = nullptr;
    std::thread monitor([this] { monitor_main(); });
    supervise();
    monitor.join();

    if (monitor_error_ == nullptr) break;  // all epochs checkpointed
    try {
      std::rethrow_exception(monitor_error_);
    } catch (const fault::CrashInjected&) {
      // The supervised failure mode; fall through to the restart path.
      // Anything else is a genuine bug and propagates to the caller.
    }
    if (config_.abort != nullptr &&
        config_.abort->load(std::memory_order_acquire)) {
      // Externally stopped: give up instead of restarting. Checkpointed
      // epochs are durable; a later daemon resumes from them as usual.
      result.gave_up = true;
      result.events.push_back(DaemonEvent{
          DaemonEventKind::kGaveUp,
          epochs_committed_.load(std::memory_order_acquire)});
      break;
    }
    alive = register_restart(kill_requested_ ? DaemonEventKind::kHangRestart
                                             : DaemonEventKind::kCrashRestart);
  }

  result.epochs_completed =
      epochs_committed_.load(std::memory_order_acquire);
  result.epoch_verdicts = verdicts_;
  result.alerts.reserve(alerts_.size());
  for (const storage::DaemonAlertRecord& alert : alerts_) {
    result.alerts.push_back(
        DaemonAlert{alert.sequence,
                    static_cast<DaemonAlertKind>(alert.kind), alert.epoch,
                    alert.zone, alert.detail, alert.missing});
  }
  result.journal_append_failures = journal_->append_failures();
  return result;
}

}  // namespace rfid::daemon
