#include "fleet/fleet.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <span>
#include <utility>

#include "fleet/scheduler.h"
#include "hash/fnv.h"
#include "hash/slot_hash.h"
#include "math/frame_optimizer.h"
#include "math/fused_detection.h"
#include "obs/catalog.h"
#include "obs/expose.h"
#include "protocol/identification.h"
#include "protocol/trp.h"
#include "protocol/utrp.h"
#include "radio/timing.h"
#include "sim/event_queue.h"
#include "util/expect.h"
#include "util/random.h"

namespace rfid::fleet {

namespace {

[[nodiscard]] std::uint64_t name_hash_of(std::string_view name) noexcept {
  return hash::fnv1a64(std::as_bytes(std::span(name.data(), name.size())));
}

/// Salt for a fused zone's challenge stream: derived from (seed, inventory,
/// zone) but NOT the attempt, so a reader retrying answers the same
/// challenges its peers saw (a TRP re-scan of one (f, r) is idempotent).
inline constexpr std::uint64_t kChallengeSalt = 0x6368616cULL;  // "chal"
/// Salt separating a fused reader's RNG stream from the legacy zone stream
/// (reader 0 of a k = 1 zone keeps the legacy derivation bit for bit).
inline constexpr std::uint64_t kReaderSalt = 0x72647273ULL;  // "rdrs"
/// Salt for a violated zone's identification drill-down: derived from
/// (seed, inventory, zone) only, so the campaign replays identically on a
/// journal-recovered zone and regardless of worker-thread count.
inline constexpr std::uint64_t kIdentifySalt = 0x69646e74ULL;  // "idnt"

[[nodiscard]] bool is_retryable(wire::FailureReason reason) noexcept {
  // Deadline misses are a verification outcome (Alg. 5's timer), not an
  // infrastructure hiccup — retrying cannot un-fail the round.
  switch (reason) {
    case wire::FailureReason::kTimeoutExhausted:
    case wire::FailureReason::kCrashed:
    case wire::FailureReason::kCorruptGiveup:
      return true;
    case wire::FailureReason::kNone:
    case wire::FailureReason::kDeadlineMissed:
      return false;
  }
  return false;
}

[[nodiscard]] GlobalVerdict worse(GlobalVerdict a, GlobalVerdict b) noexcept {
  // Severity order: violated > inconclusive > intact.
  const auto rank = [](GlobalVerdict v) {
    switch (v) {
      case GlobalVerdict::kViolated: return 2;
      case GlobalVerdict::kInconclusive: return 1;
      case GlobalVerdict::kIntact: return 0;
    }
    return 0;
  };
  return rank(a) >= rank(b) ? a : b;
}

}  // namespace

std::string_view to_string(Protocol protocol) noexcept {
  return protocol == Protocol::kTrp ? "trp" : "utrp";
}

std::string_view to_string(ZoneStatus status) noexcept {
  switch (status) {
    case ZoneStatus::kIntact: return "intact";
    case ZoneStatus::kViolated: return "violated";
    case ZoneStatus::kFailed: return "failed";
    case ZoneStatus::kDegraded: return "degraded";
  }
  return "unknown";
}

std::string_view to_string(GlobalVerdict verdict) noexcept {
  switch (verdict) {
    case GlobalVerdict::kIntact: return "intact";
    case GlobalVerdict::kViolated: return "violated";
    case GlobalVerdict::kInconclusive: return "inconclusive";
  }
  return "unknown";
}

std::string_view to_string(Admission admission) noexcept {
  switch (admission) {
    case Admission::kAccepted: return "accepted";
    case Admission::kDeferred: return "deferred";
    case Admission::kRejected: return "rejected";
  }
  return "unknown";
}

std::string_view to_string(AlertKind kind) noexcept {
  switch (kind) {
    case AlertKind::kZoneEscalated: return "zone_escalated";
    case AlertKind::kInventoryRejected: return "inventory_rejected";
    case AlertKind::kRecoveredRunQuarantined: return "recovered_run_quarantined";
    case AlertKind::kZoneDegraded: return "zone_degraded";
  }
  return "unknown";
}

struct FleetOrchestrator::ZoneState {
  tag::TagSet enrolled;            // zone slice, counters as enrolled
  tag::ColumnarTagSet columnar;    // same slice, slot words precomputed once
  std::vector<bool> absent;        // zone-local: true = stolen
  std::vector<tag::Tag> present;   // live tag state across attempts
  math::UtrpPlan utrp_plan;        // solved once at submit (UTRP only)
  double deadline_us = std::numeric_limits<double>::infinity();
  std::vector<wire::SessionOutcome> attempts_log;
  ZoneReport report;
  bool finalized = false;  // report filled (terminal or abort-synthesized)

  // Per-reader fault plans, materialized from the zone's (possibly
  // multi-reader) script at submit; empty when the zone has no faults.
  std::vector<fault::FaultPlan> reader_fault_plans;
  // Per-reader behavior flags, always sized to the zone's k (k = 1 zones
  // consult reader 0 for the forge hook).
  std::vector<bool> reader_dishonest;
  std::vector<bool> reader_excluded;

  // Fusion (k > 1) only: the fixed challenge schedule every reader answers,
  // the generalized-Theorem-1 alarm threshold, per-reader attempt logs, and
  // the completion fan-in counter. The LAST reader task to reach a terminal
  // state runs the fused finalize — deterministic because the fused verdict
  // depends only on terminal per-reader state, never on finishing order.
  std::vector<protocol::TrpChallenge> challenges;
  std::uint64_t fused_threshold = 1;
  std::vector<std::vector<wire::SessionOutcome>> reader_attempts;
  std::unique_ptr<std::atomic<std::uint32_t>> readers_pending;
};

struct FleetOrchestrator::Inventory {
  InventorySpec spec;
  std::uint64_t wave = 0;
  std::uint64_t name_hash = 0;
  std::vector<ZoneState> zones;
};

FleetOrchestrator::FleetOrchestrator(FleetConfig config)
    : config_(std::move(config)) {
  RFID_EXPECT(config_.max_zone_attempts >= 1,
              "max_zone_attempts must be at least 1");
  RFID_EXPECT(!config_.fleet_name.empty(), "fleet needs a name");
}

FleetOrchestrator::~FleetOrchestrator() = default;

Admission FleetOrchestrator::submit(InventorySpec spec) {
  RFID_EXPECT(!ran_, "submit() after run()");
  RFID_EXPECT(!spec.name.empty(), "inventory needs a name");
  RFID_EXPECT(!spec.plan.zones.empty(), "inventory plan has no zones");
  RFID_EXPECT(spec.rounds >= 1, "inventory needs at least one round");
  for (const auto& existing : inventories_) {
    RFID_EXPECT(existing->spec.name != spec.name,
                "inventory names must be unique (they key the journal)");
  }
  for (const std::uint64_t idx : spec.stolen) {
    RFID_EXPECT(idx < spec.tags.size(), "stolen index out of range");
  }
  spec.fusion.validate();
  if (spec.fusion.readers > 1) {
    // A UTRP scan advances tag counters, so k simultaneous scans of one
    // zone are physically inconsistent: fusion is TRP-only.
    RFID_EXPECT(spec.protocol == Protocol::kTrp,
                "fused (k > 1) zones require the TRP protocol");
  }

  // Admission: bin zones into waves of at most admission_capacity each.
  // An inventory is never split — one too large for the capacity gets an
  // (oversized) wave of its own rather than being refused outright.
  const std::uint64_t zone_count = spec.plan.zones.size();
  Admission admission = Admission::kAccepted;
  std::uint64_t wave = 0;
  if (config_.admission_capacity == 0) {
    if (wave_zones_.empty()) wave_zones_.push_back(0);
    wave_zones_[0] += zone_count;
  } else {
    if (wave_zones_.empty()) wave_zones_.push_back(0);
    const std::size_t last = wave_zones_.size() - 1;
    if (wave_zones_[last] == 0 ||
        wave_zones_[last] + zone_count <= config_.admission_capacity) {
      wave = last;
    } else if (config_.defer_when_saturated) {
      wave_zones_.push_back(0);
      wave = last + 1;
      admission = Admission::kDeferred;
      ++deferred_count_;
    } else {
      rejected_.push_back(std::move(spec.name));
      return Admission::kRejected;
    }
    wave_zones_[wave] += zone_count;
  }

  auto inventory = std::make_unique<Inventory>();
  inventory->spec = std::move(spec);
  inventory->wave = wave;
  const InventorySpec& s = inventory->spec;
  inventory->name_hash = name_hash_of(s.name);

  // Zone slices (validates that the population matches the plan). The
  // columnar twin carries the slot words: every zone server (and every
  // retry) reuses them instead of re-hashing the population per attempt.
  std::vector<tag::TagSet> slices = server::split_by_plan(s.tags, s.plan);
  std::vector<tag::ColumnarTagSet> columnar_slices =
      server::split_columnar_by_plan(tag::ColumnarTagSet::from_tag_set(s.tags),
                                     s.plan);

  std::vector<bool> absent(s.tags.size(), false);
  for (const std::uint64_t idx : s.stolen) {
    absent[static_cast<std::size_t>(idx)] = true;
  }

  // Eq. (3) solves cost tens of milliseconds; zones share the few distinct
  // (n, m) shapes the near-equal split produces, so solve each shape once —
  // here, sequentially, before any worker thread exists. Fused sizing
  // (generalized Theorem 1) is deduped the same way.
  std::map<std::pair<std::uint64_t, std::uint64_t>, math::UtrpPlan> solved;
  std::map<std::pair<std::uint64_t, std::uint64_t>, math::TrpPlan>
      fused_solved;

  const std::uint32_t k = s.fusion.readers;
  inventory->zones.resize(slices.size());
  std::size_t offset = 0;
  for (std::size_t z = 0; z < slices.size(); ++z) {
    ZoneState& state = inventory->zones[z];
    state.enrolled = std::move(slices[z]);
    state.columnar = std::move(columnar_slices[z]);
    const std::size_t n = state.enrolled.size();
    state.absent.assign(n, false);
    state.present.reserve(n);
    for (std::size_t j = 0; j < n; ++j) {
      if (absent[offset + j]) {
        state.absent[j] = true;
      } else {
        state.present.push_back(state.enrolled.at(j));
      }
    }
    offset += n;

    if (s.protocol == Protocol::kUtrp) {
      const std::pair<std::uint64_t, std::uint64_t> key{
          n, s.plan.zones[z].tolerance};
      auto it = solved.find(key);
      if (it == solved.end()) {
        it = solved
                 .emplace(key, math::optimize_utrp_frame(
                                   key.first, key.second, s.alpha,
                                   s.comm_budget, s.slack_slots, s.model))
                 .first;
      }
      state.utrp_plan = it->second;
    }

    if (k > 1) {
      // Generalized Eq. (2) frame plus the fixed challenge stream every
      // reader answers. The stream derives from (seed, inventory, zone) but
      // NOT the attempt: a retrying reader re-scans the same (f, r) pairs
      // its peers saw, which TRP makes idempotent.
      const std::pair<std::uint64_t, std::uint64_t> key{
          n, s.plan.zones[z].tolerance};
      auto it = fused_solved.find(key);
      if (it == fused_solved.end()) {
        it = fused_solved
                 .emplace(key, math::optimize_fused_trp_frame(
                                   key.first, key.second, s.alpha,
                                   s.fusion.sizing(), s.model))
                 .first;
      }
      state.fused_threshold = math::fused_mismatch_threshold(
          n, it->second.frame_size, s.fusion.sizing());
      util::Rng crng(util::derive_seed(
          util::derive_seed(config_.seed, inventory->name_hash, z),
          kChallengeSalt));
      state.challenges.reserve(s.rounds);
      for (std::uint64_t round = 0; round < s.rounds; ++round) {
        state.challenges.push_back(
            protocol::TrpChallenge{it->second.frame_size, crng()});
      }
      state.reader_attempts.resize(k);
    }
    state.reader_dishonest.assign(k, false);
    state.reader_excluded.assign(k, false);

    if (s.deadline_us > 0.0) {
      state.deadline_us = s.deadline_us;
    } else if (s.protocol == Protocol::kUtrp &&
               s.session.utrp_deadline_us > 0.0) {
      // EDF key: the Alg. 5 budget — zones closest to expiry run first.
      state.deadline_us = s.session.utrp_deadline_us;
    }
  }
  for (const auto& [zone, plan] : s.zone_faults) {
    RFID_EXPECT(zone < inventory->zones.size(), "fault zone out of range");
    ZoneState& state = inventory->zones[static_cast<std::size_t>(zone)];
    state.reader_fault_plans.clear();
    state.reader_fault_plans.reserve(k);
    for (std::uint32_t r = 0; r < k; ++r) {
      state.reader_fault_plans.push_back(plan.for_reader(r));
    }
  }
  for (const auto& [zone, reader] : s.dishonest_readers) {
    RFID_EXPECT(zone < inventory->zones.size(),
                "dishonest reader zone out of range");
    RFID_EXPECT(reader < k, "dishonest reader index out of range");
    inventory->zones[static_cast<std::size_t>(zone)]
        .reader_dishonest[reader] = true;
  }
  for (const auto& [zone, reader] : s.excluded_readers) {
    RFID_EXPECT(k > 1, "excluded readers require a fused (k > 1) zone");
    RFID_EXPECT(zone < inventory->zones.size(),
                "excluded reader zone out of range");
    RFID_EXPECT(reader < k, "excluded reader index out of range");
    inventory->zones[static_cast<std::size_t>(zone)]
        .reader_excluded[reader] = true;
  }
  if (k > 1) {
    for (ZoneState& state : inventory->zones) {
      std::uint32_t active = 0;
      for (std::uint32_t r = 0; r < k; ++r) {
        if (!state.reader_excluded[r]) ++active;
      }
      RFID_EXPECT(active >= 1,
                  "every reader of a zone is excluded; nothing can scan it");
      state.readers_pending =
          std::make_unique<std::atomic<std::uint32_t>>(active);
    }
  }

  inventories_.push_back(std::move(inventory));
  return admission;
}

bool FleetOrchestrator::should_abort() const noexcept {
  return task_failed_.load(std::memory_order_acquire) ||
         (config_.abort != nullptr &&
          config_.abort->load(std::memory_order_acquire));
}

std::uint64_t FleetOrchestrator::config_fingerprint() const {
  // Everything zone-record reuse depends on: which inventories exist, how
  // many zones each has, and each zone's (size, tolerance). Mixed through
  // the same splitmix chain the seed derivation uses; |1 keeps the result
  // distinguishable from the "unknown" sentinel 0.
  std::uint64_t h = 0x666c656574636667ULL;  // "fleetcfg"
  for (const auto& inventory : inventories_) {
    h = util::derive_seed(h, inventory->name_hash,
                          inventory->spec.plan.zones.size());
    for (const server::ZonePlan& zone : inventory->spec.plan.zones) {
      h = util::derive_seed(h, zone.tags, zone.tolerance);
    }
  }
  return h | 1;
}

tag::TagSet FleetOrchestrator::audit_set(const ZoneState& state) const {
  // The zone as a physical audit would re-enroll it: present tags at their
  // current counters, stolen tags frozen at the last value the server saw
  // (they are out of range and never hear a broadcast).
  std::vector<tag::Tag> tags;
  tags.reserve(state.enrolled.size());
  std::size_t cursor = 0;
  for (std::size_t j = 0; j < state.enrolled.size(); ++j) {
    if (state.absent[j]) {
      tags.push_back(state.enrolled.at(j));
    } else {
      tags.push_back(state.present[cursor++]);
    }
  }
  return tag::TagSet(std::move(tags));
}

void FleetOrchestrator::run_zone_attempt(std::size_t inv, std::size_t zone,
                                         std::uint32_t attempt) {
  ZoneState& state = inventories_[inv]->zones[zone];

  if (should_abort()) {
    // Killed before this attempt started: report the zone as crashed but
    // journal nothing — a journaled "failed" would be reused on resume as
    // if the zone had genuinely exhausted its attempts.
    state.report.zone = zone;
    state.report.status = ZoneStatus::kFailed;
    state.report.last_failure = wire::FailureReason::kCrashed;
    state.report.attempts = static_cast<std::uint32_t>(
        state.attempts_log.size());
    state.finalized = true;
    return;
  }

  try {
    run_zone_attempt_body(inv, zone, attempt);
  } catch (...) {
    // A throwing zone (sick journal disk delivering a scripted crash, a
    // bug in a protocol engine) must not terminate the worker thread: park
    // the exception, flip the kill switch so the rest of the run drains
    // fast, and let run() rethrow on the caller's thread.
    {
      const std::lock_guard<std::mutex> lock(error_mu_);
      if (first_error_ == nullptr) first_error_ = std::current_exception();
    }
    task_failed_.store(true, std::memory_order_release);
  }
}

void FleetOrchestrator::run_zone_attempt_body(std::size_t inv,
                                              std::size_t zone,
                                              std::uint32_t attempt) {
  Inventory& inventory = *inventories_[inv];
  ZoneState& state = inventory.zones[zone];
  const InventorySpec& s = inventory.spec;

  // The determinism contract: everything random about this attempt flows
  // from (fleet seed, inventory name, zone, attempt). Thread identity and
  // execution order never enter.
  util::Rng rng(util::derive_seed(
      util::derive_seed(config_.seed, inventory.name_hash, zone), attempt));
  sim::EventQueue queue;

  wire::SessionConfig session = s.session;
  session.metrics = nullptr;  // recorded post-run, in deterministic order
  session.tracer = nullptr;
  session.session_log = nullptr;
  session.group_name = s.name + "/zone" + std::to_string(zone);
  session.faults = (attempt == 0 || config_.faults_on_retries) &&
                           !state.reader_fault_plans.empty()
                       ? &state.reader_fault_plans[0]
                       : nullptr;

  const protocol::MonitoringPolicy policy{s.plan.zones[zone].tolerance,
                                          s.alpha, s.model};
  wire::SessionOutcome outcome;
  if (s.protocol == Protocol::kTrp) {
    protocol::TrpServer server(state.columnar, policy);
    server.set_bulk_mode(s.bulk_mode);
    if (state.reader_dishonest[0]) {
      // The split-attack reader: forge the expected bitstring of the FULL
      // enrolled set — "nothing missing" — instead of scanning.
      session.trp_forge = [&server](const protocol::TrpChallenge& c) {
        return server.expected_bitstring(c);
      };
    }
    outcome = wire::run_trp_session(
        queue, server, std::span<const tag::Tag>(state.present), s.rounds,
        session, rng);
  } else {
    // Every attempt re-enrolls the mirror from a fresh audit; on a retry
    // this is exactly the divergence healing resync() performs after a
    // crashed session left mirror and reality out of step.
    const tag::TagSet audited = audit_set(state);
    protocol::UtrpServer server(audited, policy, s.comm_budget,
                                state.utrp_plan);
    server.set_bulk_mode(s.bulk_mode);
    outcome = wire::run_utrp_session(queue, server,
                                     std::span<tag::Tag>(state.present),
                                     s.rounds, session, rng);
  }
  state.attempts_log.push_back(std::move(outcome));

  const wire::SessionOutcome& last = state.attempts_log.back();
  if (!last.completed && is_retryable(last.failure) &&
      attempt + 1 < config_.max_zone_attempts) {
    // Requeue onto healthy capacity: the submitting worker keeps it local,
    // an idle worker may steal it — either way the result is the same.
    scheduler_->submit(state.deadline_us,
                       [this, inv, zone, next = attempt + 1] {
                         run_zone_attempt(inv, zone, next);
                       });
    return;
  }
  finalize_zone(inv, zone, /*aborted=*/false);
}

void FleetOrchestrator::finalize_zone(std::size_t inv, std::size_t zone,
                                      bool aborted) {
  Inventory& inventory = *inventories_[inv];
  ZoneState& state = inventory.zones[zone];
  const wire::SessionOutcome& last = state.attempts_log.back();
  state.finalized = true;

  ZoneReport& report = state.report;
  report.zone = zone;
  report.attempts = static_cast<std::uint32_t>(state.attempts_log.size());
  report.last_failure = last.failure;
  report.resynced = inventory.spec.protocol == Protocol::kUtrp &&
                    state.attempts_log.size() > 1;
  report.rounds_completed = last.rounds_completed;
  for (const protocol::Verdict& verdict : last.verdicts) {
    if (!verdict.deadline_met) {
      ++report.deadline_missed_rounds;
    } else if (verdict.intact) {
      ++report.intact_rounds;
    } else {
      ++report.mismatched_rounds;
    }
  }
  for (const wire::SessionOutcome& a : state.attempts_log) {
    report.frames_sent += a.frames_sent;
    report.retransmissions += a.retransmissions;
  }
  report.duration_us = last.finished_at_us;

  // Theft evidence outranks infrastructure failure: a non-intact verdict in
  // ANY attempt marks the zone violated even if a later (or the same)
  // session died mid-way.
  bool violated = false;
  for (const wire::SessionOutcome& a : state.attempts_log) {
    for (const protocol::Verdict& verdict : a.verdicts) {
      if (!verdict.intact) violated = true;
    }
  }
  report.status = violated           ? ZoneStatus::kViolated
                  : last.completed   ? ZoneStatus::kIntact
                                     : ZoneStatus::kFailed;

  if (!aborted) journal_zone(inv, zone);
}

void FleetOrchestrator::journal_zone(std::size_t inv, std::size_t zone) {
  if (journal_ == nullptr) return;
  const Inventory& inventory = *inventories_[inv];
  const ZoneReport& report = inventory.zones[zone].report;
  storage::FleetZoneRecord record;
  record.inventory = inventory.spec.name;
  record.zone = zone;
  record.status = static_cast<std::uint8_t>(report.status);
  record.attempts = report.attempts;
  record.last_failure = static_cast<std::uint8_t>(report.last_failure);
  record.resynced = report.resynced;
  record.rounds_completed = report.rounds_completed;
  record.intact_rounds = report.intact_rounds;
  record.mismatched_rounds = report.mismatched_rounds;
  record.deadline_missed_rounds = report.deadline_missed_rounds;
  record.frames_sent = report.frames_sent;
  record.retransmissions = report.retransmissions;
  record.duration_us = report.duration_us;
  record.readers = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(report.readers.size()));
  record.degraded_rounds = report.degraded_rounds;
  for (const ReaderReport& reader : report.readers) {
    if (reader.suspect) ++record.suspected_readers;
  }
  journal_->append(record);
}

void FleetOrchestrator::run_reader_attempt(std::size_t inv, std::size_t zone,
                                           std::uint32_t reader,
                                           std::uint32_t attempt) {
  // Killed before this attempt started: return WITHOUT decrementing the
  // zone's fan-in counter, so the fused finalize never runs on partial
  // evidence — run() synthesizes a crashed report for unfinalized zones.
  if (should_abort()) return;
  try {
    run_reader_attempt_body(inv, zone, reader, attempt);
  } catch (...) {
    {
      const std::lock_guard<std::mutex> lock(error_mu_);
      if (first_error_ == nullptr) first_error_ = std::current_exception();
    }
    task_failed_.store(true, std::memory_order_release);
  }
}

void FleetOrchestrator::run_reader_attempt_body(std::size_t inv,
                                                std::size_t zone,
                                                std::uint32_t reader,
                                                std::uint32_t attempt) {
  Inventory& inventory = *inventories_[inv];
  ZoneState& state = inventory.zones[zone];
  const InventorySpec& s = inventory.spec;

  // The fused determinism contract extends the zone derivation with the
  // reader index: (fleet seed, inventory, zone, attempt, reader). The +1
  // and salt keep every reader stream disjoint from the k = 1 legacy
  // stream, which reader 0 would otherwise collide with.
  util::Rng rng(util::derive_seed(
      util::derive_seed(
          util::derive_seed(config_.seed, inventory.name_hash, zone),
          attempt),
      reader + 1, kReaderSalt));
  sim::EventQueue queue;

  wire::SessionConfig session = s.session;
  session.metrics = nullptr;  // recorded post-run, in deterministic order
  session.tracer = nullptr;
  session.session_log = nullptr;
  session.group_name = s.name + "/zone" + std::to_string(zone);
  session.trp_challenges = &state.challenges;
  session.faults = (attempt == 0 || config_.faults_on_retries) &&
                           !state.reader_fault_plans.empty()
                       ? &state.reader_fault_plans[reader]
                       : nullptr;

  const protocol::MonitoringPolicy policy{s.plan.zones[zone].tolerance,
                                          s.alpha, s.model};
  protocol::TrpServer server(state.columnar, policy);
  server.set_bulk_mode(s.bulk_mode);
  if (state.reader_dishonest[reader]) {
    session.trp_forge = [&server](const protocol::TrpChallenge& c) {
      return server.expected_bitstring(c);
    };
  }
  wire::SessionOutcome outcome = wire::run_trp_session(
      queue, server, std::span<const tag::Tag>(state.present), s.rounds,
      session, rng);
  std::vector<wire::SessionOutcome>& log = state.reader_attempts[reader];
  log.push_back(std::move(outcome));

  const wire::SessionOutcome& last = log.back();
  if (!last.completed && is_retryable(last.failure) &&
      attempt + 1 < config_.max_zone_attempts) {
    scheduler_->submit(state.deadline_us,
                       [this, inv, zone, reader, next = attempt + 1] {
                         run_reader_attempt(inv, zone, reader, next);
                       });
    return;
  }
  // This reader is terminal. The LAST reader to arrive owns the fused
  // finalize; fusion consumes only terminal per-reader state, so the
  // verdict is independent of which reader that happens to be.
  if (state.readers_pending->fetch_sub(1, std::memory_order_acq_rel) == 1) {
    finalize_fused_zone(inv, zone);
  }
}

void FleetOrchestrator::finalize_fused_zone(std::size_t inv,
                                            std::size_t zone) {
  Inventory& inventory = *inventories_[inv];
  ZoneState& state = inventory.zones[zone];
  const InventorySpec& s = inventory.spec;
  const std::uint32_t k = s.fusion.readers;
  const std::uint32_t quorum = s.fusion.effective_quorum();
  state.finalized = true;

  const protocol::MonitoringPolicy policy{s.plan.zones[zone].tolerance,
                                          s.alpha, s.model};
  protocol::TrpServer server(state.columnar, policy);
  server.set_bulk_mode(s.bulk_mode);
  fusion::TrustTracker tracker(s.fusion);

  ZoneReport& report = state.report;
  report.zone = zone;

  // Per-session verdicts are NOT authoritative here: an honest reader's
  // reply loss produces false per-session mismatches by design. Only the
  // fused evidence, judged against the generalized-Theorem-1 threshold,
  // decides the zone.
  bool violated = false;
  std::uint64_t committed = 0;
  for (std::uint64_t round = 0; round < s.rounds; ++round) {
    // Each reader's freshest scan of this round: retries answer the same
    // challenge stream, so the last attempt supersedes earlier ones.
    std::vector<const bits::Bitstring*> observed(k, nullptr);
    for (std::uint32_t r = 0; r < k; ++r) {
      if (state.reader_excluded[r]) continue;
      const auto& log = state.reader_attempts[r];
      if (log.empty()) continue;
      const wire::SessionOutcome& last = log.back();
      if (last.reported.size() <= round) continue;
      observed[r] = &last.reported[round];
    }
    std::uint32_t valid = 0;
    for (const bits::Bitstring* b : observed) {
      if (b != nullptr) ++valid;
    }
    if (valid == 0) continue;  // no reader reached this round
    const fusion::FusedRound fused = fusion::fuse_round(
        std::span<const bits::Bitstring* const>(observed.data(),
                                                observed.size()),
        tracker.trust());
    report.fused_slots += fused.slots_fused;
    for (std::uint32_t r = 0; r < k; ++r) {
      report.phantom_votes += fused.phantom_busy[r];
      report.missed_votes += fused.missed_busy[r];
    }
    tracker.observe_round(fused);
    if (valid < quorum) {
      // Below quorum the majority-masking guarantee is void (a lone
      // adversary could frame or whitewash the zone): no verdict, the
      // round is surfaced as degraded instead.
      ++report.degraded_rounds;
      continue;
    }
    ++committed;
    const bits::Bitstring expected =
        server.expected_bitstring(state.challenges[round]);
    std::uint64_t mismatches = 0;
    for (std::uint64_t slot = 0; slot < state.challenges[round].frame_size;
         ++slot) {
      if (expected.test(slot) && !fused.fused.test(slot)) ++mismatches;
    }
    if (mismatches >= state.fused_threshold) {
      violated = true;
      ++report.mismatched_rounds;
    } else {
      ++report.intact_rounds;
    }
  }
  report.rounds_completed = committed;

  report.readers.resize(k);
  bool failure_set = false;
  for (std::uint32_t r = 0; r < k; ++r) {
    ReaderReport& rr = report.readers[r];
    rr.reader = r;
    rr.excluded = state.reader_excluded[r];
    rr.suspect = tracker.suspect(r);
    rr.trust = tracker.trust()[r];
    rr.votes_overruled = tracker.overruled_votes(r);
    const auto& log = state.reader_attempts[r];
    rr.attempts = static_cast<std::uint32_t>(log.size());
    report.attempts += rr.attempts;
    if (!log.empty()) {
      const wire::SessionOutcome& last = log.back();
      rr.completed = last.completed;
      rr.last_failure = last.failure;
      report.duration_us = std::max(report.duration_us, last.finished_at_us);
      for (const wire::SessionOutcome& a : log) {
        report.frames_sent += a.frames_sent;
        report.retransmissions += a.retransmissions;
      }
    } else if (!rr.excluded) {
      rr.last_failure = wire::FailureReason::kCrashed;
    }
    if (!rr.excluded && !failure_set) {
      report.last_failure = rr.last_failure;
      failure_set = true;
    }
  }

  report.status = violated                ? ZoneStatus::kViolated
                  : committed == s.rounds ? ZoneStatus::kIntact
                  : committed > 0         ? ZoneStatus::kDegraded
                                          : ZoneStatus::kFailed;
  journal_zone(inv, zone);
}

FleetResult FleetOrchestrator::run() {
  RFID_EXPECT(!ran_, "run() may only be called once");
  ran_ = true;

  FleetResult result;

  // Harvest an interrupted run before overwriting the journal: matching
  // zone records are folded in as-is (determinism makes them exactly what
  // re-execution would produce) and carried into the fresh journal so a
  // second crash still sees them. A recorded run whose config fingerprint
  // conflicts with the current plan is quarantined instead — stale zone
  // records must never leak into a re-planned fleet.
  std::map<std::pair<std::string, std::uint64_t>, storage::FleetZoneRecord>
      recovered;
  const std::uint64_t fingerprint = config_fingerprint();
  if (config_.journal_backend != nullptr) {
    journal_ = std::make_unique<storage::FleetJournal>(
        *config_.journal_backend, config_.journal_name);
    storage::FleetRecovery recovery = storage::recover_interrupted_run_checked(
        journal_->load(), config_.seed, config_.fleet_name, fingerprint);
    if (recovery.stale) {
      result.alerts.push_back(FleetAlert{
          AlertKind::kRecoveredRunQuarantined, config_.fleet_name, 0,
          std::to_string(recovery.stale_records) +
              " journaled zone record(s) from a run with a different plan "
              "were quarantined; every zone re-executes"});
    }
    recovered = std::move(recovery.zones);
    std::vector<storage::FleetZoneRecord> carried;
    for (const auto& inventory : inventories_) {
      for (std::size_t z = 0; z < inventory->zones.size(); ++z) {
        const auto it = recovered.find({inventory->spec.name, z});
        if (it != recovered.end()) carried.push_back(it->second);
      }
    }
    journal_->begin({config_.seed, config_.fleet_name, fingerprint}, carried);
  }

  scheduler_ = std::make_unique<FleetScheduler>(config_.threads);
  result.threads = scheduler_->threads();

  const std::size_t wave_count = std::max<std::size_t>(wave_zones_.size(), 1);
  for (std::size_t w = 0; w < wave_count; ++w) {
    for (std::size_t i = 0; i < inventories_.size(); ++i) {
      Inventory& inventory = *inventories_[i];
      if (inventory.wave != w) continue;
      for (std::size_t z = 0; z < inventory.zones.size(); ++z) {
        const auto it = recovered.find({inventory.spec.name, z});
        if (it != recovered.end()) {
          const storage::FleetZoneRecord& rec = it->second;
          ZoneReport& report = inventory.zones[z].report;
          report.zone = z;
          report.status = static_cast<ZoneStatus>(rec.status);
          report.last_failure =
              static_cast<wire::FailureReason>(rec.last_failure);
          report.attempts = rec.attempts;
          report.resynced = rec.resynced;
          report.recovered = true;
          report.rounds_completed = rec.rounds_completed;
          report.intact_rounds = rec.intact_rounds;
          report.mismatched_rounds = rec.mismatched_rounds;
          report.deadline_missed_rounds = rec.deadline_missed_rounds;
          report.frames_sent = rec.frames_sent;
          report.retransmissions = rec.retransmissions;
          report.duration_us = rec.duration_us;
          if (rec.readers > 1) {
            // The journal keeps per-reader detail only in aggregate; the
            // synthesized reports preserve the counts (indices are lost).
            report.degraded_rounds = rec.degraded_rounds;
            report.readers.resize(rec.readers);
            for (std::uint32_t r = 0; r < rec.readers; ++r) {
              report.readers[r].reader = r;
              report.readers[r].suspect = r < rec.suspected_readers;
            }
          }
          continue;
        }
        ZoneState& state = inventory.zones[z];
        const std::uint32_t k = inventory.spec.fusion.readers;
        if (k > 1) {
          for (std::uint32_t r = 0; r < k; ++r) {
            if (state.reader_excluded[r]) continue;
            scheduler_->submit(state.deadline_us, [this, i, z, r] {
              run_reader_attempt(i, z, r, 0);
            });
          }
        } else {
          scheduler_->submit(state.deadline_us, [this, i, z] {
            run_zone_attempt(i, z, 0);
          });
        }
      }
    }
    // The wave barrier IS the backpressure: the next wave's zones are not
    // offered to the pool until the saturated one drains. With a kill
    // switch wired in, the wait is deadline-bounded so a wedged zone
    // cannot strand the watchdog behind an unbounded wait_idle().
    if (config_.abort == nullptr) {
      scheduler_->wait_idle();
      if (should_abort()) break;  // a zone threw; tasks drained fast
    } else {
      while (!scheduler_->wait_idle_for(std::chrono::milliseconds(1))) {
        if (should_abort()) break;
      }
      if (should_abort()) {
        scheduler_->stop(/*drain=*/false);
        break;
      }
    }
  }
  result.aborted = should_abort();

  result.tasks_stolen = scheduler_->stolen();
  scheduler_.reset();  // join workers; all zone state is quiescent below

  // Zones whose task (or requeue) was abandoned before running have no
  // finalized report; give them an explicit crashed one so aggregation
  // (and the operator) see them as not-monitored rather than defaults.
  if (result.aborted) {
    for (const auto& inventory : inventories_) {
      for (std::size_t z = 0; z < inventory->zones.size(); ++z) {
        ZoneState& state = inventory->zones[z];
        if (state.finalized || state.report.recovered) continue;
        state.report.zone = z;
        state.report.status = ZoneStatus::kFailed;
        state.report.last_failure = wire::FailureReason::kCrashed;
        std::uint32_t attempts =
            static_cast<std::uint32_t>(state.attempts_log.size());
        for (const auto& log : state.reader_attempts) {
          attempts += static_cast<std::uint32_t>(log.size());
        }
        state.report.attempts = attempts;
      }
    }
  }

  if (first_error_ != nullptr) {
    std::exception_ptr error;
    {
      const std::lock_guard<std::mutex> lock(error_mu_);
      error = first_error_;
    }
    std::rethrow_exception(error);
  }

  // Identification drill-down: for every violated zone of an inventory that
  // opted in, run a missing-tag identification campaign so the escalation
  // names the stolen tags instead of just flagging the zone. This is a
  // sequential post-pass over quiescent zone state with an RNG derived from
  // (seed, inventory, zone): a pure function of the fleet seed, so it
  // produces identical output on 1 or 64 threads and on zones recovered
  // from an interrupted run's journal.
  for (const auto& inventory : inventories_) {
    const InventorySpec& s = inventory->spec;
    if (!s.identify.enabled) continue;
    const std::unique_ptr<protocol::IdentificationProtocol> identifier =
        protocol::make_identification_protocol(s.identify.protocol,
                                               s.identify.config);
    const hash::SlotHasher hasher{};
    for (std::size_t z = 0; z < inventory->zones.size(); ++z) {
      ZoneState& state = inventory->zones[z];
      if (state.report.status != ZoneStatus::kViolated) continue;
      util::Rng rng(util::derive_seed(
          util::derive_seed(config_.seed, inventory->name_hash, z),
          kIdentifySalt));
      protocol::IdentifyResult campaign = identifier->identify(
          state.columnar.ids(), std::span<const tag::Tag>(state.present),
          hasher, rng);
      ZoneIdentification& id = state.report.identification;
      id.ran = true;
      id.protocol = std::string(identifier->name());
      id.present = campaign.present.size();
      id.unresolved = campaign.unresolved.size();
      id.rounds = campaign.rounds;
      id.slots = campaign.total_slots;
      id.tree_queries = campaign.tree_queries;
      id.filter_bits = campaign.filter_bits;
      id.estimated_missing = campaign.estimated_missing;
      id.duration_us = campaign.elapsed_us(radio::TimingModel{});
      id.missing = std::move(campaign.missing);
      ++result.zones_identified;
      result.tags_named += id.missing.size();
    }
  }

  result.waves = wave_count;
  result.deferred_inventories = deferred_count_;
  result.rejected = rejected_;
  for (const std::string& name : rejected_) {
    result.alerts.push_back(FleetAlert{
        AlertKind::kInventoryRejected, name, 0,
        "admission capacity saturated; inventory is NOT monitored"});
  }

  for (const auto& inventory : inventories_) {
    InventoryReport inv_report;
    inv_report.name = inventory->spec.name;
    inv_report.protocol = inventory->spec.protocol;
    inv_report.wave = inventory->wave;
    inv_report.tags = inventory->spec.tags.size();
    inv_report.worst_zone_detection =
        inventory->spec.plan.worst_zone_detection;
    for (const server::ZonePlan& zone : inventory->spec.plan.zones) {
      inv_report.tolerance += zone.tolerance;
    }
    GlobalVerdict verdict = GlobalVerdict::kIntact;
    for (std::size_t z = 0; z < inventory->zones.size(); ++z) {
      const ZoneState& state = inventory->zones[z];
      const ZoneReport& report = state.report;
      inv_report.zones.push_back(report);
      ++result.zones;
      result.attempts += state.attempts_log.size();
      if (state.attempts_log.size() > 1) {
        result.requeues += state.attempts_log.size() - 1;
      }
      for (const auto& log : state.reader_attempts) {
        result.attempts += log.size();
        if (log.size() > 1) result.requeues += log.size() - 1;
      }
      for (const ReaderReport& reader : report.readers) {
        if (reader.suspect) ++result.readers_suspected;
      }
      if (report.resynced) ++result.resyncs;
      if (report.recovered) ++result.zones_recovered;
      switch (report.status) {
        case ZoneStatus::kViolated:
          verdict = worse(verdict, GlobalVerdict::kViolated);
          break;
        case ZoneStatus::kFailed: {
          verdict = worse(verdict, GlobalVerdict::kInconclusive);
          ++result.escalations;
          std::string detail = std::string(to_string(report.last_failure)) +
                               " after " + std::to_string(report.attempts) +
                               " attempt(s)";
          result.alerts.push_back(FleetAlert{AlertKind::kZoneEscalated,
                                             inventory->spec.name, z,
                                             std::move(detail)});
          break;
        }
        case ZoneStatus::kDegraded: {
          // The verdict stands on fewer readers than configured: no
          // violation seen, but the pigeonhole guarantee did not close at
          // full strength — inconclusive, never silently intact.
          verdict = worse(verdict, GlobalVerdict::kInconclusive);
          ++result.degraded_zones;
          std::string detail =
              std::to_string(report.degraded_rounds) +
              " round(s) committed below the " +
              std::to_string(inventory->spec.fusion.effective_quorum()) +
              "-of-" + std::to_string(inventory->spec.fusion.readers) +
              " quorum";
          result.alerts.push_back(FleetAlert{AlertKind::kZoneDegraded,
                                             inventory->spec.name, z,
                                             std::move(detail)});
          break;
        }
        case ZoneStatus::kIntact:
          break;
      }
    }
    inv_report.verdict = verdict;
    result.verdict = worse(result.verdict, verdict);
    result.inventories.push_back(std::move(inv_report));
  }

  // An intact verdict asserts the pigeonhole guarantee held, which requires
  // zones to have actually run. A fleet where nothing was monitored (every
  // inventory rejected at admission, or nothing submitted) is inconclusive.
  if (result.zones == 0) {
    result.verdict = worse(result.verdict, GlobalVerdict::kInconclusive);
  }

  // An aborted run journals no end record: the next orchestrator with the
  // same (seed, fleet, plan) resumes it, reusing every journaled zone.
  if (journal_ != nullptr && !result.aborted) {
    journal_->append(storage::FleetRunEndRecord{
        static_cast<std::uint8_t>(result.verdict)});
  }

  record_observability(result);
  return result;
}

void FleetOrchestrator::record_observability(const FleetResult& result) {
  if (config_.metrics != nullptr) {
    obs::MetricsRegistry& m = *config_.metrics;
    const std::uint64_t accepted =
        inventories_.size() - deferred_count_;
    if (accepted > 0) {
      obs::catalog::fleet_admissions_total(m, "accepted").inc(accepted);
    }
    if (deferred_count_ > 0) {
      obs::catalog::fleet_admissions_total(m, "deferred").inc(deferred_count_);
    }
    if (!rejected_.empty()) {
      obs::catalog::fleet_admissions_total(m, "rejected")
          .inc(rejected_.size());
    }
    for (const InventoryReport& inventory : result.inventories) {
      obs::catalog::fleet_inventories_total(m, to_string(inventory.verdict))
          .inc();
      const std::string_view protocol = to_string(inventory.protocol);
      for (const ZoneReport& zone : inventory.zones) {
        obs::catalog::fleet_zones_total(m, to_string(zone.status)).inc();
        if (!zone.recovered) {
          obs::catalog::fleet_zone_attempts_total(m, protocol)
              .inc(zone.attempts);
        }
        obs::catalog::fleet_zone_duration_us(m, protocol)
            .observe(zone.duration_us);
      }
    }
    if (result.requeues > 0) {
      obs::catalog::fleet_requeues_total(m).inc(result.requeues);
    }
    if (result.escalations > 0) {
      obs::catalog::fleet_escalations_total(m).inc(result.escalations);
    }
    if (result.resyncs > 0) {
      obs::catalog::fleet_zone_resyncs_total(m).inc(result.resyncs);
    }
    if (result.zones_recovered > 0) {
      obs::catalog::fleet_zones_recovered_total(m).inc(result.zones_recovered);
    }
    std::uint64_t fused_slots = 0;
    std::uint64_t phantom = 0;
    std::uint64_t missed = 0;
    std::uint64_t degraded_rounds = 0;
    for (const InventoryReport& inventory : result.inventories) {
      for (const ZoneReport& zone : inventory.zones) {
        fused_slots += zone.fused_slots;
        phantom += zone.phantom_votes;
        missed += zone.missed_votes;
        degraded_rounds += zone.degraded_rounds;
      }
    }
    if (fused_slots > 0) {
      obs::catalog::fusion_slots_fused_total(m).inc(fused_slots);
    }
    if (phantom > 0) {
      obs::catalog::fusion_votes_overruled_total(m, "phantom_busy")
          .inc(phantom);
    }
    if (missed > 0) {
      obs::catalog::fusion_votes_overruled_total(m, "missed_busy").inc(missed);
    }
    if (degraded_rounds > 0) {
      obs::catalog::fusion_rounds_degraded_total(m).inc(degraded_rounds);
    }
    if (result.readers_suspected > 0) {
      obs::catalog::fusion_readers_suspected_total(m)
          .inc(result.readers_suspected);
    }
    for (const InventoryReport& inventory : result.inventories) {
      for (const ZoneReport& zone : inventory.zones) {
        const ZoneIdentification& id = zone.identification;
        if (!id.ran) continue;
        obs::catalog::identify_campaigns_total(
            m, id.protocol, id.unresolved == 0 ? "resolved" : "capped")
            .inc();
        obs::catalog::identify_rounds_total(m, id.protocol).inc(id.rounds);
        obs::catalog::identify_slots_total(m, id.protocol, "frame")
            .inc(id.slots - id.tree_queries);
        obs::catalog::identify_slots_total(m, id.protocol, "tree")
            .inc(id.tree_queries);
        if (id.filter_bits > 0) {
          obs::catalog::identify_filter_bits_total(m).inc(id.filter_bits);
        }
        obs::catalog::identify_tags_total(m, "missing")
            .inc(id.missing.size());
        obs::catalog::identify_tags_total(m, "present").inc(id.present);
        obs::catalog::identify_tags_total(m, "unresolved")
            .inc(id.unresolved);
      }
    }
    obs::catalog::fleet_runs_total(m, to_string(result.verdict)).inc();
  }

  if (config_.tracer != nullptr) {
    obs::Tracer& tracer = *config_.tracer;
    const std::uint64_t fleet_span = tracer.begin_span("fleet");
    tracer.annotate(fleet_span, "name", config_.fleet_name);
    tracer.annotate(fleet_span, "verdict", to_string(result.verdict));
    tracer.annotate(fleet_span, "zones", std::to_string(result.zones));
    for (std::size_t i = 0; i < result.inventories.size(); ++i) {
      const InventoryReport& inventory = result.inventories[i];
      const std::uint64_t inv_span =
          tracer.begin_span("inventory", fleet_span);
      tracer.annotate(inv_span, "name", inventory.name);
      tracer.annotate(inv_span, "protocol", to_string(inventory.protocol));
      tracer.annotate(inv_span, "verdict", to_string(inventory.verdict));
      for (std::size_t z = 0; z < inventory.zones.size(); ++z) {
        const ZoneReport& zone = inventory.zones[z];
        const std::uint64_t zone_span = tracer.begin_span("zone", inv_span);
        tracer.annotate(zone_span, "zone", std::to_string(zone.zone));
        tracer.annotate(zone_span, "status", to_string(zone.status));
        tracer.annotate(zone_span, "attempts",
                        std::to_string(zone.attempts));
        if (zone.recovered) {
          tracer.annotate(zone_span, "recovered", "true");
        } else {
          const ZoneState& state = inventories_[i]->zones[z];
          for (std::size_t a = 0; a < state.attempts_log.size(); ++a) {
            const wire::SessionOutcome& outcome = state.attempts_log[a];
            const std::uint64_t session_span =
                tracer.begin_span("session", zone_span);
            tracer.annotate(session_span, "attempt", std::to_string(a));
            tracer.annotate(session_span, "outcome",
                            outcome.completed
                                ? std::string_view("completed")
                                : wire::to_string(outcome.failure));
            tracer.end_span(session_span);
          }
          for (std::size_t r = 0; r < state.reader_attempts.size(); ++r) {
            for (std::size_t a = 0; a < state.reader_attempts[r].size();
                 ++a) {
              const wire::SessionOutcome& outcome =
                  state.reader_attempts[r][a];
              const std::uint64_t session_span =
                  tracer.begin_span("session", zone_span);
              tracer.annotate(session_span, "reader", std::to_string(r));
              tracer.annotate(session_span, "attempt", std::to_string(a));
              tracer.annotate(session_span, "outcome",
                              outcome.completed
                                  ? std::string_view("completed")
                                  : wire::to_string(outcome.failure));
              tracer.end_span(session_span);
            }
          }
        }
        tracer.end_span(zone_span);
      }
      tracer.end_span(inv_span);
    }
    tracer.end_span(fleet_span);
  }

  if (config_.session_log != nullptr) {
    for (const auto& inventory : inventories_) {
      for (std::size_t z = 0; z < inventory->zones.size(); ++z) {
        const ZoneState& state = inventory->zones[z];
        for (std::size_t a = 0; a < state.attempts_log.size(); ++a) {
          const wire::SessionOutcome& outcome = state.attempts_log[a];
          obs::SessionSummary summary;
          summary.protocol = std::string(to_string(inventory->spec.protocol));
          summary.group =
              inventory->spec.name + "/zone" + std::to_string(z);
          summary.fleet = config_.fleet_name;
          summary.attempt = a;
          summary.completed = outcome.completed;
          summary.outcome = outcome.completed
                                ? "completed"
                                : std::string(wire::to_string(outcome.failure));
          summary.rounds_completed = outcome.rounds_completed;
          summary.round_failures = outcome.round_failures.size();
          summary.frames_sent = outcome.frames_sent;
          summary.retransmissions = outcome.retransmissions;
          summary.duration_us = outcome.finished_at_us;
          config_.session_log->record(std::move(summary));
        }
        const std::uint32_t k =
            static_cast<std::uint32_t>(state.reader_attempts.size());
        for (std::uint32_t r = 0; r < k; ++r) {
          for (std::size_t a = 0; a < state.reader_attempts[r].size(); ++a) {
            const wire::SessionOutcome& outcome = state.reader_attempts[r][a];
            obs::SessionSummary summary;
            summary.protocol =
                std::string(to_string(inventory->spec.protocol));
            summary.group =
                inventory->spec.name + "/zone" + std::to_string(z);
            summary.fleet = config_.fleet_name;
            summary.attempt = a;
            summary.reader = r;
            summary.readers = k;
            summary.completed = outcome.completed;
            summary.outcome =
                outcome.completed
                    ? "completed"
                    : std::string(wire::to_string(outcome.failure));
            summary.rounds_completed = outcome.rounds_completed;
            summary.round_failures = outcome.round_failures.size();
            summary.frames_sent = outcome.frames_sent;
            summary.retransmissions = outcome.retransmissions;
            summary.duration_us = outcome.finished_at_us;
            config_.session_log->record(std::move(summary));
          }
        }
      }
    }
  }
}

std::string summary(const FleetResult& result) {
  std::string out;
  out += "fleet verdict: ";
  out += to_string(result.verdict);
  out += '\n';
  out += "inventories: " + std::to_string(result.inventories.size()) +
         " monitored, " + std::to_string(result.rejected.size()) +
         " rejected, " + std::to_string(result.deferred_inventories) +
         " deferred; waves: " + std::to_string(result.waves) + '\n';
  for (const InventoryReport& inventory : result.inventories) {
    std::uint64_t intact = 0;
    std::uint64_t violated = 0;
    std::uint64_t degraded = 0;
    std::uint64_t failed = 0;
    for (const ZoneReport& zone : inventory.zones) {
      switch (zone.status) {
        case ZoneStatus::kIntact: ++intact; break;
        case ZoneStatus::kViolated: ++violated; break;
        case ZoneStatus::kDegraded: ++degraded; break;
        case ZoneStatus::kFailed: ++failed; break;
      }
    }
    out += "  " + inventory.name + " [" +
           std::string(to_string(inventory.protocol)) + "] wave " +
           std::to_string(inventory.wave) + ": " +
           std::string(to_string(inventory.verdict)) + " - zones " +
           std::to_string(inventory.zones.size()) + " (intact " +
           std::to_string(intact) + ", violated " + std::to_string(violated) +
           ", degraded " + std::to_string(degraded) + ", failed " +
           std::to_string(failed) + "), tags " +
           std::to_string(inventory.tags) + ", tolerance " +
           std::to_string(inventory.tolerance) + ", worst-zone detection " +
           obs::format_double(inventory.worst_zone_detection) + '\n';
    for (const ZoneReport& zone : inventory.zones) {
      const ZoneIdentification& id = zone.identification;
      if (!id.ran) continue;
      out += "    zone" + std::to_string(zone.zone) + " identified [" +
             id.protocol + "]: " + std::to_string(id.missing.size()) +
             " missing, " + std::to_string(id.present) + " present, " +
             std::to_string(id.unresolved) + " unresolved in " +
             std::to_string(id.rounds) + " round(s), " +
             std::to_string(id.slots) + " slot(s)\n";
      // Name the stolen tags (capped: the full list is in the report).
      constexpr std::size_t kNamedCap = 8;
      const std::size_t named = std::min(id.missing.size(), kNamedCap);
      for (std::size_t i = 0; i < named; ++i) {
        out += "      missing " + id.missing[i].to_string() + '\n';
      }
      if (id.missing.size() > named) {
        out += "      ... +" + std::to_string(id.missing.size() - named) +
               " more\n";
      }
    }
  }
  out += "zones: " + std::to_string(result.zones) + "; attempts: " +
         std::to_string(result.attempts) + ", requeues: " +
         std::to_string(result.requeues) + ", escalations: " +
         std::to_string(result.escalations) + ", resyncs: " +
         std::to_string(result.resyncs) + ", recovered: " +
         std::to_string(result.zones_recovered) + ", degraded: " +
         std::to_string(result.degraded_zones) + ", suspects: " +
         std::to_string(result.readers_suspected) + '\n';
  for (const FleetAlert& alert : result.alerts) {
    out += "alert [" + std::string(to_string(alert.kind)) + "] " +
           alert.inventory;
    if (alert.kind == AlertKind::kZoneEscalated ||
        alert.kind == AlertKind::kZoneDegraded) {
      out += "/zone" + std::to_string(alert.zone);
    }
    out += ": " + alert.detail + '\n';
  }
  return out;
}

}  // namespace rfid::fleet
