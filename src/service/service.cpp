#include "service/service.h"

#include <poll.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <system_error>
#include <thread>
#include <utility>
#include <vector>

#include "daemon/daemon.h"
#include "fleet/fleet.h"
#include "fleet/scheduler.h"
#include "obs/catalog.h"
#include "obs/expose.h"
#include "server/group_planner.h"
#include "service/framing.h"
#include "service/messages.h"
#include "service/socket.h"
#include "storage/backend.h"
#include "tag/tag_set.h"

namespace rfid::service {

namespace {

constexpr std::size_t kReadChunk = 16 * 1024;
constexpr std::size_t kHttpHeaderLimit = 8 * 1024;

}  // namespace

struct MonitorService::Impl {
  // ------------------------------------------------------------ types ----

  struct Enrolled {
    tag::TagSet tags;
    server::GroupPlan plan;
    fleet::Protocol protocol = fleet::Protocol::kTrp;
    std::uint64_t tolerance = 1;
    double alpha = 0.95;
    std::uint64_t zone_capacity = 0;
    std::uint64_t rounds = 1;
  };

  struct Tenant {
    double tokens = 0.0;
    bool bucket_primed = false;
    std::uint64_t last_refill_us = 0;
    std::uint64_t inflight = 0;
    std::uint64_t next_sequence = 0;
    std::map<std::string, Enrolled> inventories;
    std::deque<TenantAlert> feed;  // bounded retained backlog
  };

  struct PendingRun {
    bool watch = false;
    std::string tenant;
    std::uint64_t session_id = 0;
    std::uint64_t run_id = 0;
    std::uint64_t admitted_us = 0;
    StartRunRequest run;
    StartWatchRequest watch_req;
  };

  /// Everything a worker task needs, built on the IO thread so the task
  /// never touches shared tenant state.
  struct RunWork {
    PendingRun pending;
    fleet::InventorySpec spec;       // runs only
    daemon::DaemonConfig dcfg;       // watches only
    daemon::WarehouseConfig dwarehouse;
  };

  struct Completion {
    PendingRun pending;
    bool failed = false;  // non-crash exception escaped the run
    std::string failure;
    fleet::FleetResult fleet;  // runs
    std::vector<daemon::DaemonAlert> daemon_alerts;  // watches
    std::uint64_t epochs_completed = 0;
    bool gave_up = false;
  };

  struct Conn {
    enum class Kind : std::uint8_t { kClient, kHttp };
    Kind kind = Kind::kClient;
    Socket sock;
    FrameReader reader;
    std::string http_buf;
    std::deque<std::vector<std::byte>> outbox;
    std::size_t outbox_offset = 0;  // sent bytes of outbox.front()
    std::size_t outbox_bytes = 0;
    bool hello = false;
    bool counted = false;  // active-connections gauge was incremented
    std::string tenant;
    std::uint64_t session_id = 0;
    bool subscribed = false;
    bool closing = false;  // flush outbox, then close
    bool dead = false;     // drop immediately, peer is gone

    Conn(Kind k, Socket s, std::uint32_t max_payload)
        : kind(k), sock(std::move(s)), reader(max_payload) {}
  };

  // ------------------------------------------------------------ state ----

  ServiceConfig config;
  std::unique_ptr<Listener> listener;
  std::unique_ptr<Listener> http_listener;
  WakePipe wake;
  std::unique_ptr<fleet::FleetScheduler> pool;
  std::thread io_thread;
  std::chrono::steady_clock::time_point epoch_tp;

  std::atomic<bool> started{false};
  std::atomic<bool> stopped{false};
  std::atomic<bool> draining{false};
  std::atomic<bool> io_stop{false};
  std::atomic<bool> abort_runs{false};
  std::atomic<std::uint64_t> inflight{0};
  std::atomic<std::uint64_t> deferred_size{0};
  std::atomic<std::uint64_t> done_pending{0};

  std::mutex done_mu;
  std::vector<Completion> done;

  // IO-thread-only state.
  std::vector<std::unique_ptr<Conn>> conns;
  std::map<std::uint64_t, Conn*> sessions;
  std::map<std::string, Tenant> tenants;
  std::deque<PendingRun> deferred;
  std::uint64_t next_session = 1;
  std::uint64_t next_run = 1;
  bool announced_shutdown = false;

  ServiceStats stats;  // IO thread writes; stop() reads after join

  explicit Impl(ServiceConfig cfg) : config(std::move(cfg)) {}

  // ------------------------------------------------------------ clock ----

  [[nodiscard]] std::uint64_t now_us() const {
    if (config.clock_us) return config.clock_us();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_tp)
            .count());
  }

  // ---------------------------------------------------------- metrics ----

  [[nodiscard]] obs::MetricsRegistry* metrics() const noexcept {
    return config.metrics;
  }

  void count_frame_error(ErrorCode code) {
    ++stats.frame_errors;
    if (metrics() != nullptr) {
      obs::catalog::service_frame_errors_total(*metrics(), to_string(code))
          .inc();
    }
  }

  // ----------------------------------------------------------- outbox ----

  /// Returns whether the bytes were actually enqueued: false when the
  /// connection is already going away or the slow-consumer cut fired.
  bool queue_bytes(Conn& c, std::vector<std::byte> bytes) {
    if (c.closing || c.dead) return false;
    c.outbox_bytes += bytes.size();
    if (c.outbox_bytes > config.outbox_limit_bytes) {
      // Slow consumer: cut the connection instead of buffering unboundedly.
      c.outbox.clear();
      c.outbox_offset = 0;
      c.outbox_bytes = 0;
      c.dead = true;
      count_frame_error(ErrorCode::kOverloaded);
      return false;
    }
    c.outbox.push_back(std::move(bytes));
    return true;
  }

  template <typename Msg>
  void send(Conn& c, FrameType type, const Msg& msg) {
    if (!queue_bytes(c, encode_frame(type, encode(msg)))) return;
    ++stats.frames_out;
    if (metrics() != nullptr) {
      obs::catalog::service_frames_total(*metrics(), "out").inc();
    }
  }

  void send_error(Conn& c, ErrorCode code, std::string message) {
    count_frame_error(code);
    send(c, FrameType::kError, ErrorMsg{code, std::move(message)});
    if (is_fatal(code)) c.closing = true;
  }

  // ------------------------------------------------------- tenant feed ----

  void publish_alert(const std::string& tenant_name, TenantAlert alert) {
    Tenant& tenant = tenants[tenant_name];
    alert.sequence = tenant.next_sequence++;
    tenant.feed.push_back(alert);
    while (tenant.feed.size() > config.alert_backlog) tenant.feed.pop_front();
    for (const auto& conn : conns) {
      if (conn->subscribed && !conn->closing && !conn->dead &&
          conn->tenant == tenant_name) {
        send(*conn, FrameType::kTenantAlert, alert);
      }
    }
  }

  // -------------------------------------------------------- admission ----

  void refill(Tenant& tenant, std::uint64_t now) {
    if (!tenant.bucket_primed) {
      tenant.tokens = config.token_capacity;
      tenant.last_refill_us = now;
      tenant.bucket_primed = true;
      return;
    }
    const double elapsed_s =
        static_cast<double>(now - tenant.last_refill_us) / 1e6;
    tenant.tokens = std::min(config.token_capacity,
                             tenant.tokens + elapsed_s * config.tokens_per_sec);
    tenant.last_refill_us = now;
  }

  void count_admission(const char* result) {
    if (metrics() != nullptr) {
      obs::catalog::service_admissions_total(*metrics(), result).inc();
    }
  }

  void reject(Conn& c, std::uint64_t retry_after_ms, std::string reason) {
    ++stats.rejected;
    count_admission("rejected");
    send(c, FrameType::kBackpressure,
         Backpressure{retry_after_ms, std::move(reason)});
  }

  void handle_start(Conn& c, PendingRun pending) {
    Tenant& tenant = tenants[c.tenant];
    const std::string& inventory_name =
        pending.watch ? pending.watch_req.inventory : pending.run.inventory;
    const auto it = tenant.inventories.find(inventory_name);
    if (it == tenant.inventories.end()) {
      send_error(c, ErrorCode::kUnknownInventory,
                 "inventory not enrolled: " + inventory_name);
      return;
    }
    if (pending.watch && pending.watch_req.epochs > config.max_watch_epochs) {
      send_error(c, ErrorCode::kBadRequest, "watch epochs over limit");
      return;
    }
    if (!pending.watch) {
      for (const std::uint64_t idx : pending.run.stolen) {
        if (idx >= it->second.tags.size()) {
          send_error(c, ErrorCode::kBadRequest, "stolen index out of range");
          return;
        }
      }
    }
    if (draining.load(std::memory_order_relaxed)) {
      reject(c, static_cast<std::uint64_t>(config.drain_timeout.count()),
             "shutting down");
      return;
    }

    const std::uint64_t now = now_us();
    refill(tenant, now);
    if (tenant.tokens < 1.0) {
      const double deficit_s =
          (1.0 - tenant.tokens) / std::max(config.tokens_per_sec, 1e-9);
      reject(c, static_cast<std::uint64_t>(deficit_s * 1000.0) + 1,
             "rate limited");
      return;
    }
    tenant.tokens -= 1.0;

    pending.tenant = c.tenant;
    pending.session_id = c.session_id;
    pending.run_id = next_run++;
    pending.admitted_us = now;

    if (inflight.load(std::memory_order_relaxed) < config.max_inflight &&
        tenant.inflight < config.max_inflight_per_tenant) {
      ++stats.admitted;
      count_admission("accepted");
      send(c, FrameType::kRunAdmitted,
           RunAdmitted{pending.run_id,
                       static_cast<std::uint8_t>(fleet::Admission::kAccepted),
                       0});
      launch(std::move(pending));
      return;
    }
    if (deferred.size() < config.max_deferred) {
      ++stats.deferred;
      count_admission("deferred");
      deferred.push_back(std::move(pending));
      deferred_size.store(deferred.size(), std::memory_order_relaxed);
      send(c, FrameType::kRunAdmitted,
           RunAdmitted{deferred.back().run_id,
                       static_cast<std::uint8_t>(fleet::Admission::kDeferred),
                       deferred.size()});
      return;
    }
    reject(c, config.reject_retry_ms * (deferred.size() + 1),
           "admission queue full");
  }

  void launch_deferred() {
    while (inflight.load(std::memory_order_relaxed) < config.max_inflight) {
      auto it = std::find_if(deferred.begin(), deferred.end(),
                             [this](const PendingRun& p) {
                               return tenants[p.tenant].inflight <
                                      config.max_inflight_per_tenant;
                             });
      if (it == deferred.end()) break;
      PendingRun pending = std::move(*it);
      deferred.erase(it);
      deferred_size.store(deferred.size(), std::memory_order_relaxed);
      launch(std::move(pending));
    }
  }

  // ---------------------------------------------------------- execute ----

  void launch(PendingRun pending) {
    Tenant& tenant = tenants[pending.tenant];
    ++tenant.inflight;
    inflight.fetch_add(1, std::memory_order_relaxed);

    auto work = std::make_shared<RunWork>();
    const Enrolled& enrolled =
        tenant.inventories.at(pending.watch ? pending.watch_req.inventory
                                            : pending.run.inventory);
    if (pending.watch) {
      const StartWatchRequest& req = pending.watch_req;
      work->dwarehouse.protocol = enrolled.protocol;
      work->dwarehouse.initial_tags = enrolled.tags.size();
      work->dwarehouse.tolerance = enrolled.tolerance;
      work->dwarehouse.zone_capacity = enrolled.zone_capacity;
      work->dwarehouse.alpha = enrolled.alpha;
      work->dwarehouse.rounds = enrolled.rounds;
      work->dwarehouse.identify.enabled = req.identify;
      if (req.steal > 0) {
        work->dwarehouse.churn.push_back(daemon::ChurnEvent{
            .epoch = req.steal_epoch,
            .enroll = 0,
            .decommission = 0,
            .steal = req.steal,
            .steal_from = req.steal_from});
      }
      work->dcfg.seed = req.seed;
      work->dcfg.name = pending.tenant + "/" + req.inventory;
      work->dcfg.epochs = req.epochs;
      work->dcfg.threads = config.run_threads;
      work->dcfg.metrics = config.metrics;
      // Drain contract: a blown stop() budget aborts in-flight watches
      // just like fleet runs — the daemon gives up instead of restarting.
      work->dcfg.abort = &abort_runs;
    } else {
      const StartRunRequest& req = pending.run;
      fleet::InventorySpec spec;
      spec.name = req.inventory;
      spec.protocol = enrolled.protocol;
      spec.tags = enrolled.tags;  // copy: the task owns its population
      spec.plan = enrolled.plan;
      spec.stolen = req.stolen;
      spec.alpha = enrolled.alpha;
      spec.rounds = enrolled.rounds;
      spec.identify.enabled = req.identify;
      work->spec = std::move(spec);
    }
    work->pending = std::move(pending);

    // Admission-stamp EDF: earlier-admitted runs schedule first, so the
    // deferred wave drains FIFO through whichever worker frees up.
    pool->submit(static_cast<double>(work->pending.admitted_us),
                 [this, work] { execute(*work); });
  }

  void execute(RunWork& work) {
    Completion comp;
    comp.pending = work.pending;
    try {
      if (work.pending.watch) {
        // Directory name derives from the server-generated run id only —
        // tenant/inventory strings are client-controlled and must never
        // reach the filesystem.
        std::unique_ptr<storage::StorageBackend> backend;
        if (config.journal_dir.empty()) {
          backend = std::make_unique<storage::MemoryBackend>();
        } else {
          backend = std::make_unique<storage::FileBackend>(
              config.journal_dir + "/watch-" +
              std::to_string(work.pending.run_id));
        }
        work.dcfg.backend = backend.get();
        daemon::MonitorDaemon watch(work.dcfg, work.dwarehouse);
        daemon::DaemonResult result = watch.run();
        comp.daemon_alerts = std::move(result.alerts);
        comp.epochs_completed = result.epochs_completed;
        comp.gave_up = result.gave_up;
      } else {
        fleet::FleetConfig fcfg;
        fcfg.seed = work.pending.run.seed;
        fcfg.threads = config.run_threads;
        fcfg.fleet_name = work.pending.tenant;
        fcfg.metrics = config.metrics;
        fcfg.abort = &abort_runs;
        fleet::FleetOrchestrator orchestrator(fcfg);
        orchestrator.submit(std::move(work.spec));
        comp.fleet = orchestrator.run();
      }
    } catch (const std::exception& e) {
      comp.failed = true;
      comp.failure = e.what();
    }
    {
      // The increment must land before the completion becomes swappable:
      // process_completions() decrements by batch size after the swap, and
      // an increment arriving late would transiently wrap the counter.
      const std::lock_guard<std::mutex> lock(done_mu);
      done_pending.fetch_add(1, std::memory_order_release);
      done.push_back(std::move(comp));
    }
    wake.wake();
  }

  // ------------------------------------------------------ completions ----

  void process_completions() {
    std::vector<Completion> batch;
    {
      const std::lock_guard<std::mutex> lock(done_mu);
      batch.swap(done);
    }
    if (batch.empty()) return;
    done_pending.fetch_sub(batch.size(), std::memory_order_release);
    for (Completion& comp : batch) finish(comp);
    launch_deferred();
  }

  void finish(Completion& comp) {
    Tenant& tenant = tenants[comp.pending.tenant];
    if (tenant.inflight > 0) --tenant.inflight;
    inflight.fetch_sub(1, std::memory_order_relaxed);

    const std::uint64_t latency = now_us() - comp.pending.admitted_us;
    if (metrics() != nullptr) {
      obs::catalog::service_run_latency_us(*metrics())
          .observe(static_cast<double>(latency));
    }

    const auto session = sessions.find(comp.pending.session_id);
    Conn* conn = session == sessions.end() ? nullptr : session->second;

    if (comp.failed) {
      ++stats.runs_aborted;
      if (metrics() != nullptr) {
        obs::catalog::service_runs_total(*metrics(), "aborted").inc();
      }
      if (conn != nullptr) {
        send_error(*conn, ErrorCode::kInternal,
                   "run failed: " + comp.failure);
      }
      return;
    }

    if (comp.pending.watch) {
      finish_watch(comp, tenant, conn);
    } else {
      finish_run(comp, conn);
    }
  }

  void finish_run(Completion& comp, Conn* conn) {
    const fleet::FleetResult& result = comp.fleet;
    ++stats.runs_completed;
    const char* verdict_label =
        result.aborted ? "aborted" : fleet::to_string(result.verdict).data();
    if (result.aborted) ++stats.runs_aborted;
    if (metrics() != nullptr) {
      obs::catalog::service_runs_total(*metrics(), verdict_label).inc();
    }

    RunVerdictMsg verdict;
    verdict.run_id = comp.pending.run_id;
    verdict.inventory = comp.pending.run.inventory;
    verdict.verdict = static_cast<std::uint8_t>(result.verdict);
    verdict.zones = result.zones;
    verdict.attempts = result.attempts;
    verdict.tags_named = result.tags_named;
    verdict.aborted = result.aborted;
    for (const fleet::InventoryReport& inv : result.inventories) {
      for (const fleet::ZoneReport& zone : inv.zones) {
        if (zone.status == fleet::ZoneStatus::kViolated) ++verdict.zones_violated;
        if (zone.identification.ran) {
          verdict.missing.insert(verdict.missing.end(),
                                 zone.identification.missing.begin(),
                                 zone.identification.missing.end());
        }
      }
    }

    if (conn != nullptr) {
      for (const fleet::FleetAlert& alert : result.alerts) {
        send(*conn, FrameType::kRunAlert,
             RunAlertMsg{comp.pending.run_id,
                         std::string(fleet::to_string(alert.kind)),
                         alert.inventory, alert.zone, alert.detail});
      }
      send(*conn, FrameType::kRunVerdict, verdict);
    }

    // The tenant feed keeps theft evidence (with the drill-down's named
    // tags) and fleet alerts even if the requesting connection is gone.
    if (result.verdict == fleet::GlobalVerdict::kViolated) {
      TenantAlert alert;
      alert.kind = "run_violated";
      alert.run_id = comp.pending.run_id;
      alert.detail = comp.pending.run.inventory;
      alert.missing = verdict.missing;
      for (const fleet::InventoryReport& inv : result.inventories) {
        for (const fleet::ZoneReport& zone : inv.zones) {
          if (zone.status == fleet::ZoneStatus::kViolated) {
            alert.zone = zone.zone;
            break;
          }
        }
      }
      publish_alert(comp.pending.tenant, std::move(alert));
    }
    for (const fleet::FleetAlert& fleet_alert : result.alerts) {
      TenantAlert alert;
      alert.kind = std::string(fleet::to_string(fleet_alert.kind));
      alert.run_id = comp.pending.run_id;
      alert.zone = fleet_alert.zone;
      alert.detail = fleet_alert.detail;
      publish_alert(comp.pending.tenant, std::move(alert));
    }
  }

  void finish_watch(Completion& comp, Tenant&, Conn* conn) {
    ++stats.runs_completed;
    if (metrics() != nullptr) {
      obs::catalog::service_runs_total(*metrics(), "watch").inc();
    }
    for (const daemon::DaemonAlert& da : comp.daemon_alerts) {
      TenantAlert alert;
      alert.kind = std::string(daemon::to_string(da.kind));
      alert.run_id = comp.pending.run_id;
      alert.epoch = da.epoch;
      alert.zone = da.zone;
      alert.detail = da.detail;
      alert.missing = da.missing_tags;
      publish_alert(comp.pending.tenant, std::move(alert));
    }
    if (conn != nullptr) {
      send(*conn, FrameType::kWatchDone,
           WatchDone{comp.pending.run_id, comp.epochs_completed,
                     comp.daemon_alerts.size(), comp.gave_up});
    }
  }

  // ----------------------------------------------------- frame dispatch ----

  void handle_frame(Conn& c, const Frame& frame) {
    ++stats.frames_in;
    if (metrics() != nullptr) {
      obs::catalog::service_frames_total(*metrics(), "in").inc();
    }
    const auto type = static_cast<FrameType>(frame.type);
    try {
      switch (type) {
        case FrameType::kHello: {
          if (c.hello) {
            // A second Hello would re-register the session under a fresh id
            // and leave the old sessions entry dangling after the reap —
            // one session per connection, full stop.
            send_error(c, ErrorCode::kBadRequest,
                       "hello already received on this connection");
            return;
          }
          const HelloRequest req = decode_hello(frame.payload);
          if (req.version != kProtocolVersion) {
            send_error(c, ErrorCode::kBadVersion, "unsupported version");
            return;
          }
          if (req.tenant.empty()) {
            send_error(c, ErrorCode::kMalformedPayload, "empty tenant");
            return;
          }
          c.hello = true;
          c.tenant = req.tenant;
          c.session_id = next_session++;
          sessions[c.session_id] = &c;
          (void)tenants[c.tenant];
          send(c, FrameType::kHelloOk,
               HelloOk{kProtocolVersion, c.session_id, config.max_frame_bytes,
                       static_cast<std::uint64_t>(config.token_capacity),
                       config.max_inflight_per_tenant});
          return;
        }
        case FrameType::kPing:
          send(c, FrameType::kPong, decode_ping(frame.payload));
          return;
        case FrameType::kGoodbye:
          c.closing = true;
          return;
        default:
          break;
      }
      if (!c.hello) {
        send_error(c, ErrorCode::kHelloRequired, "hello first");
        return;
      }
      switch (type) {
        case FrameType::kEnroll:
          handle_enroll(c, decode_enroll(frame.payload));
          return;
        case FrameType::kStartRun: {
          PendingRun pending;
          pending.watch = false;
          pending.run = decode_start_run(frame.payload);
          handle_start(c, std::move(pending));
          return;
        }
        case FrameType::kStartWatch: {
          PendingRun pending;
          pending.watch = true;
          pending.watch_req = decode_start_watch(frame.payload);
          handle_start(c, std::move(pending));
          return;
        }
        case FrameType::kSubscribe: {
          Tenant& tenant = tenants[c.tenant];
          if (!c.subscribed) {
            c.subscribed = true;
            if (metrics() != nullptr) {
              obs::catalog::service_active_streams(*metrics()).add(1.0);
            }
          }
          send(c, FrameType::kSubscribeOk, SubscribeOk{tenant.feed.size()});
          for (const TenantAlert& alert : tenant.feed) {
            send(c, FrameType::kTenantAlert, alert);
          }
          return;
        }
        default:
          send_error(c, ErrorCode::kUnknownType, "unknown frame type");
          return;
      }
    } catch (const std::invalid_argument& e) {
      send_error(c, ErrorCode::kMalformedPayload, e.what());
    }
  }

  void handle_enroll(Conn& c, EnrollRequest req) {
    Tenant& tenant = tenants[c.tenant];
    if (req.tags.empty()) {
      send_error(c, ErrorCode::kBadRequest, "no tags to enroll");
      return;
    }
    if (req.protocol > 1) {
      send_error(c, ErrorCode::kBadRequest, "unknown protocol");
      return;
    }
    if (tenant.inventories.size() >= config.max_inventories_per_tenant &&
        tenant.inventories.find(req.inventory) == tenant.inventories.end()) {
      send_error(c, ErrorCode::kBadRequest, "inventory quota exhausted");
      return;
    }
    Enrolled enrolled;
    try {
      enrolled.plan = server::plan_groups(
          {.total_tags = req.tags.size(),
           .total_tolerance = req.tolerance,
           .alpha = req.alpha,
           .max_group_size = req.zone_capacity,
           .model = math::EmptySlotModel::kPoissonApprox});
    } catch (const std::invalid_argument& e) {
      send_error(c, ErrorCode::kBadRequest, e.what());
      return;
    }
    std::vector<tag::Tag> population;
    population.reserve(req.tags.size());
    for (const tag::TagId& id : req.tags) population.emplace_back(id);
    enrolled.tags = tag::TagSet(std::move(population));
    enrolled.protocol = static_cast<fleet::Protocol>(req.protocol);
    enrolled.tolerance = req.tolerance;
    enrolled.alpha = req.alpha;
    enrolled.zone_capacity = req.zone_capacity;
    enrolled.rounds = std::max<std::uint64_t>(1, req.rounds);
    EnrollOk ok{req.inventory, enrolled.tags.size(),
                enrolled.plan.zones.size(), enrolled.plan.total_slots};
    tenant.inventories[req.inventory] = std::move(enrolled);
    send(c, FrameType::kEnrollOk, ok);
  }

  // -------------------------------------------------------------- http ----

  void handle_http(Conn& c) {
    const std::size_t header_end = c.http_buf.find("\r\n\r\n");
    if (header_end == std::string::npos) {
      if (c.http_buf.size() > kHttpHeaderLimit) c.dead = true;
      return;
    }
    std::string path = "";
    const std::size_t sp1 = c.http_buf.find(' ');
    if (sp1 != std::string::npos) {
      const std::size_t sp2 = c.http_buf.find(' ', sp1 + 1);
      if (sp2 != std::string::npos) path = c.http_buf.substr(sp1 + 1, sp2 - sp1 - 1);
    }

    std::string status = "200 OK";
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
    const char* path_label = "other";
    if (path == "/metrics") {
      path_label = "metrics";
    } else if (path == "/metrics.json") {
      path_label = "metrics_json";
    } else if (path == "/healthz") {
      path_label = "healthz";
    }
    // Count the scrape before rendering, so a scrape observes itself — the
    // exposition always reflects every request the service has served.
    if (metrics() != nullptr) {
      obs::catalog::service_http_requests_total(*metrics(), path_label).inc();
    }
    if (path == "/metrics") {
      if (metrics() == nullptr) {
        status = "503 Service Unavailable";
        body = "no metrics registry configured\n";
      } else {
        content_type = "text/plain; version=0.0.4; charset=utf-8";
        body = obs::render_prometheus(metrics()->snapshot());
      }
    } else if (path == "/metrics.json") {
      if (metrics() == nullptr) {
        status = "503 Service Unavailable";
        body = "no metrics registry configured\n";
      } else {
        content_type = "application/json";
        body = obs::render_json(metrics()->snapshot());
      }
    } else if (path == "/healthz") {
      body = draining.load(std::memory_order_relaxed) ? "draining\n" : "ok\n";
    } else {
      status = "404 Not Found";
      body = "unknown path\n";
    }

    std::string response = "HTTP/1.0 " + status +
                           "\r\nContent-Type: " + content_type +
                           "\r\nContent-Length: " + std::to_string(body.size()) +
                           "\r\nConnection: close\r\n\r\n" + body;
    std::vector<std::byte> bytes(response.size());
    std::memcpy(bytes.data(), response.data(), response.size());
    queue_bytes(c, std::move(bytes));
    c.closing = true;
  }

  // ----------------------------------------------------------- IO loop ----

  void accept_loop(Listener& from, Conn::Kind kind) {
    while (auto sock = from.accept()) {
      if (conns.size() >= config.max_connections) {
        // Refuse politely: a frame for clients, nothing for HTTP.
        if (kind == Conn::Kind::kClient) {
          auto conn = std::make_unique<Conn>(kind, std::move(*sock),
                                             config.max_frame_bytes);
          send_error(*conn, ErrorCode::kOverloaded, "connection limit");
          conn->closing = true;
          conns.push_back(std::move(conn));
        }
        continue;
      }
      ++stats.connections;
      if (metrics() != nullptr) {
        obs::catalog::service_connections_total(
            *metrics(), kind == Conn::Kind::kClient ? "client" : "http")
            .inc();
        obs::catalog::service_active_connections(*metrics()).add(1.0);
      }
      conns.push_back(std::make_unique<Conn>(kind, std::move(*sock),
                                             config.max_frame_bytes));
      conns.back()->counted = true;
      if (draining.load(std::memory_order_relaxed) &&
          conns.back()->kind == Conn::Kind::kClient) {
        send(*conns.back(), FrameType::kShutdown,
             ShutdownMsg{static_cast<std::uint64_t>(
                 config.drain_timeout.count())});
      }
    }
  }

  void read_conn(Conn& c) {
    std::byte buf[kReadChunk];
    std::vector<Frame> frames;
    for (;;) {
      long n = 0;
      try {
        n = c.sock.read_some(buf);
      } catch (const std::system_error&) {
        c.dead = true;
        return;
      }
      if (n < 0) break;  // would block
      if (n == 0) {      // orderly close
        if (c.outbox.empty()) c.dead = true;
        c.closing = true;
        break;
      }
      const std::span<const std::byte> data(buf, static_cast<std::size_t>(n));
      if (c.kind == Conn::Kind::kHttp) {
        c.http_buf.append(reinterpret_cast<const char*>(data.data()),
                          data.size());
        handle_http(c);
        if (c.closing || c.dead) break;
        continue;
      }
      frames.clear();
      const ErrorCode err = c.reader.feed(data, frames);
      for (const Frame& frame : frames) {
        if (c.closing || c.dead) break;
        handle_frame(c, frame);
      }
      if (err != ErrorCode::kNone) {
        send_error(c, err, "malformed frame");
        break;
      }
      if (c.closing || c.dead) break;
    }
  }

  void write_conn(Conn& c) {
    while (!c.outbox.empty()) {
      const std::vector<std::byte>& front = c.outbox.front();
      const std::span<const std::byte> rest(front.data() + c.outbox_offset,
                                            front.size() - c.outbox_offset);
      long n = 0;
      try {
        n = c.sock.write_some(rest);
      } catch (const std::system_error&) {
        c.dead = true;
        return;
      }
      if (n < 0) return;  // would block
      c.outbox_offset += static_cast<std::size_t>(n);
      c.outbox_bytes -= static_cast<std::size_t>(n);
      if (c.outbox_offset == front.size()) {
        c.outbox.pop_front();
        c.outbox_offset = 0;
      }
    }
  }

  void reap_conns() {
    for (auto it = conns.begin(); it != conns.end();) {
      Conn& c = **it;
      if (c.dead || (c.closing && c.outbox.empty())) {
        if (c.session_id != 0) sessions.erase(c.session_id);
        if (metrics() != nullptr) {
          // Over-limit refusals were never counted in; decrementing them
          // out would drift the gauge negative under overload.
          if (c.counted) {
            obs::catalog::service_active_connections(*metrics()).add(-1.0);
          }
          if (c.subscribed) {
            obs::catalog::service_active_streams(*metrics()).add(-1.0);
          }
        }
        it = conns.erase(it);
      } else {
        ++it;
      }
    }
  }

  void announce_shutdown_once() {
    if (announced_shutdown) return;
    announced_shutdown = true;
    for (const auto& conn : conns) {
      if (conn->kind == Conn::Kind::kClient && !conn->closing && !conn->dead) {
        send(*conn, FrameType::kShutdown,
             ShutdownMsg{
                 static_cast<std::uint64_t>(config.drain_timeout.count())});
      }
    }
  }

  void io_loop() {
    std::vector<pollfd> pfds;
    std::vector<Conn*> polled;
    std::chrono::steady_clock::time_point flush_deadline{};
    bool flushing = false;

    for (;;) {
      pfds.clear();
      polled.clear();
      pfds.push_back(pollfd{wake.read_fd(), POLLIN, 0});
      const bool accepting = !io_stop.load(std::memory_order_relaxed);
      std::size_t listener_at = SIZE_MAX;
      std::size_t http_at = SIZE_MAX;
      if (accepting) {
        listener_at = pfds.size();
        pfds.push_back(pollfd{listener->fd(), POLLIN, 0});
        http_at = pfds.size();
        pfds.push_back(pollfd{http_listener->fd(), POLLIN, 0});
      }
      const std::size_t conns_from = pfds.size();
      for (const auto& conn : conns) {
        short events = 0;
        if (!conn->closing && !conn->dead) events |= POLLIN;
        if (!conn->outbox.empty() && !conn->dead) events |= POLLOUT;
        pfds.push_back(pollfd{conn->sock.fd(), events, 0});
        polled.push_back(conn.get());
      }

      (void)::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 20);
      wake.drain();

      process_completions();
      if (draining.load(std::memory_order_relaxed)) announce_shutdown_once();

      if (accepting) {
        if (pfds[listener_at].revents != 0) {
          accept_loop(*listener, Conn::Kind::kClient);
        }
        if (pfds[http_at].revents != 0) {
          accept_loop(*http_listener, Conn::Kind::kHttp);
        }
      }

      for (std::size_t i = 0; i < polled.size(); ++i) {
        Conn& c = *polled[i];
        const short revents = pfds[conns_from + i].revents;
        if ((revents & (POLLERR | POLLNVAL)) != 0) {
          c.dead = true;
          continue;
        }
        if ((revents & (POLLIN | POLLHUP)) != 0 && !c.closing && !c.dead) {
          read_conn(c);
        }
        if ((revents & POLLOUT) != 0 && !c.dead) write_conn(c);
        // Also opportunistically flush frames queued this round.
        if (!c.outbox.empty() && !c.dead) write_conn(c);
      }

      reap_conns();
      if (!io_stop.load(std::memory_order_relaxed)) launch_deferred();

      if (io_stop.load(std::memory_order_relaxed)) {
        if (!flushing) {
          flushing = true;
          flush_deadline =
              std::chrono::steady_clock::now() + std::chrono::seconds(1);
        }
        const bool quiet =
            done_pending.load(std::memory_order_acquire) == 0 &&
            std::all_of(conns.begin(), conns.end(), [](const auto& conn) {
              return conn->outbox.empty() || conn->dead;
            });
        if (quiet || std::chrono::steady_clock::now() >= flush_deadline) {
          break;
        }
      }
    }
    conns.clear();
    sessions.clear();
  }

  // --------------------------------------------------------- lifecycle ----

  void start() {
    if (started.exchange(true)) {
      throw std::logic_error("MonitorService started twice");
    }
    raise_fd_limit();
    epoch_tp = std::chrono::steady_clock::now();
    listener = std::make_unique<Listener>(config.port);
    http_listener = std::make_unique<Listener>(config.http_port);
    pool = std::make_unique<fleet::FleetScheduler>(config.workers);
    io_thread = std::thread([this] { io_loop(); });
  }

  ServiceStats stop() {
    if (!started.load() || stopped.exchange(true)) return stats;

    draining.store(true, std::memory_order_relaxed);
    wake.wake();

    const auto deadline =
        std::chrono::steady_clock::now() + config.drain_timeout;
    auto quiesced = [this] {
      return inflight.load(std::memory_order_relaxed) == 0 &&
             deferred_size.load(std::memory_order_relaxed) == 0 &&
             done_pending.load(std::memory_order_acquire) == 0;
    };
    while (!quiesced() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    const bool clean = quiesced();
    if (!clean) {
      // Budget blown: flip the fleet abort switch so in-flight runs bail
      // cooperatively, then abandon whatever never started.
      abort_runs.store(true, std::memory_order_relaxed);
    }
    pool->stop(clean);
    if (!clean) {
      // In-flight tasks finished (aborted); give the IO thread a moment to
      // deliver their completions before tearing it down.
      const auto flush_by =
          std::chrono::steady_clock::now() + std::chrono::seconds(2);
      while (done_pending.load(std::memory_order_acquire) != 0 &&
             std::chrono::steady_clock::now() < flush_by) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }

    io_stop.store(true, std::memory_order_relaxed);
    wake.wake();
    if (io_thread.joinable()) io_thread.join();
    stats.drained_cleanly = clean;
    return stats;
  }
};

MonitorService::MonitorService(ServiceConfig config)
    : impl_(std::make_unique<Impl>(std::move(config))) {}

MonitorService::~MonitorService() {
  try {
    (void)impl_->stop();
  } catch (...) {
    // Destructors must not throw; the OS reclaims the sockets regardless.
  }
}

void MonitorService::start() { impl_->start(); }

std::uint16_t MonitorService::port() const noexcept {
  return impl_->listener ? impl_->listener->port() : 0;
}

std::uint16_t MonitorService::http_port() const noexcept {
  return impl_->http_listener ? impl_->http_listener->port() : 0;
}

ServiceStats MonitorService::stop() { return impl_->stop(); }

bool MonitorService::running() const noexcept {
  return impl_->started.load() && !impl_->stopped.load();
}

}  // namespace rfid::service
