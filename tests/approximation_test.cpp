// Tests for the closed-form mean-field approximations.
#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>

#include "math/approximation.h"
#include "math/detection.h"
#include "math/frame_optimizer.h"

namespace {

using rfid::math::approximate_trp_frame;
using rfid::math::detection_probability;
using rfid::math::detection_probability_mean_field;
using rfid::math::optimize_trp_frame;

TEST(MeanField, MatchesExactDetectionClosely) {
  for (const std::uint64_t n : {100u, 500u, 2000u}) {
    for (const std::uint64_t x : {1u, 6u, 31u}) {
      const std::uint64_t f = n;  // load 1, the interesting regime
      const double exact = detection_probability(n, x, f);
      const double mean_field = detection_probability_mean_field(n, x, f);
      EXPECT_NEAR(mean_field, exact, 0.02) << "n=" << n << " x=" << x;
    }
  }
}

TEST(MeanField, ZeroMissingIsZero) {
  EXPECT_DOUBLE_EQ(detection_probability_mean_field(100, 0, 128), 0.0);
}

TEST(MeanField, MonotoneInXAndF) {
  double prev = 0.0;
  for (std::uint64_t x = 1; x <= 30; ++x) {
    const double g = detection_probability_mean_field(500, x, 600);
    EXPECT_GE(g, prev);
    prev = g;
  }
  prev = 0.0;
  for (std::uint64_t f = 100; f <= 3000; f += 100) {
    const double g = detection_probability_mean_field(500, 6, f);
    EXPECT_GE(g, prev);
    prev = g;
  }
}

TEST(MeanField, RejectsBadInput) {
  EXPECT_THROW((void)detection_probability_mean_field(5, 6, 10),
               std::invalid_argument);
  EXPECT_THROW((void)detection_probability_mean_field(5, 1, 0),
               std::invalid_argument);
}

TEST(ClosedFormFrame, SatisfiesItsOwnModel) {
  for (const std::uint64_t n : {100u, 1000u, 2000u}) {
    for (const std::uint64_t m : {0u, 5u, 30u}) {
      const std::uint32_t f = approximate_trp_frame(n, m, 0.95);
      EXPECT_GT(detection_probability_mean_field(n, m + 1, f), 0.95);
      if (f > 1) {
        EXPECT_LE(detection_probability_mean_field(n, m + 1, f - 1), 0.951);
      }
    }
  }
}

class ClosedFormVsExact
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t, double>> {};

TEST_P(ClosedFormVsExact, WithinAFewPercentOfOptimizer) {
  const auto [n, m, alpha] = GetParam();
  const std::uint32_t closed = approximate_trp_frame(n, m, alpha);
  const std::uint32_t exact = optimize_trp_frame(n, m, alpha).frame_size;
  const double abs_diff = std::abs(static_cast<double>(closed) - exact);
  const double rel = abs_diff / static_cast<double>(exact);
  // Mean-field error is a handful of slots; only at small n is that a
  // noticeable fraction.
  EXPECT_TRUE(rel < 0.025 || abs_diff <= 10.0)
      << "closed=" << closed << " exact=" << exact;
}

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, ClosedFormVsExact,
    ::testing::Combine(::testing::Values(100u, 500u, 1000u, 2000u),
                       ::testing::Values(0u, 5u, 10u, 30u),
                       ::testing::Values(0.9, 0.95, 0.99)));

TEST(ClosedFormFrame, RejectsBadInput) {
  EXPECT_THROW((void)approximate_trp_frame(0, 0, 0.95), std::invalid_argument);
  EXPECT_THROW((void)approximate_trp_frame(5, 5, 0.95), std::invalid_argument);
  EXPECT_THROW((void)approximate_trp_frame(10, 1, 1.0), std::invalid_argument);
}

TEST(ClosedFormFrame, ExtremeAlphaThrowsInsteadOfOverflowing) {
  EXPECT_THROW((void)approximate_trp_frame(10, 0, 1.0 - 1e-16),
               std::invalid_argument);
}

}  // namespace
