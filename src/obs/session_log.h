// Ring buffer of recent monitoring-session summaries.
//
// The metrics registry answers "how much, in aggregate"; this log answers
// "what happened lately": the last N sessions with their outcome, round
// count, and link statistics, oldest evicted first. The wire layer records
// one entry per run_*_session when a SessionLog is attached to the
// SessionConfig; render_json (expose.h) can embed the log in the JSON
// exposition. Mutex-guarded — sessions on different threads may share one
// log.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace rfid::obs {

struct SessionSummary {
  std::string protocol;       // "trp" | "utrp"
  std::string group;
  std::string fleet;          // fleet name when run by an orchestrator
  std::uint64_t attempt = 0;  // zone attempt index (0 = first try)
  std::uint32_t reader = 0;   // reader index within the zone's fused set
  std::uint32_t readers = 1;  // zone's reader count k (labels render at k > 1)
  bool completed = false;
  std::string outcome;        // "completed" or the FailureReason string
  std::uint64_t rounds_completed = 0;
  std::uint64_t round_failures = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t retransmissions = 0;
  double duration_us = 0.0;
};

class SessionLog {
 public:
  explicit SessionLog(std::size_t capacity = 64) : capacity_(capacity) {
    ring_.reserve(capacity_ == 0 ? 1 : capacity_);
  }

  void record(SessionSummary summary) {
    const std::lock_guard<std::mutex> lock(mu_);
    ++total_;
    if (capacity_ == 0) return;
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(summary));
    } else {
      ring_[next_] = std::move(summary);
      next_ = (next_ + 1) % capacity_;
    }
  }

  /// The retained summaries, oldest first.
  [[nodiscard]] std::vector<SessionSummary> recent() const {
    const std::lock_guard<std::mutex> lock(mu_);
    std::vector<SessionSummary> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % ring_.size()]);
    }
    return out;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Sessions ever recorded, including evicted ones.
  [[nodiscard]] std::uint64_t total_recorded() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return total_;
  }

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::size_t next_ = 0;  // index of the oldest entry once the ring is full
  std::uint64_t total_ = 0;
  std::vector<SessionSummary> ring_;
};

}  // namespace rfid::obs
