#include "hash/slot_hash.h"

namespace rfid::hash {

std::string_view to_string(HashKind kind) noexcept {
  switch (kind) {
    case HashKind::kFnv1a64: return "fnv1a64";
    case HashKind::kMurmurFmix64: return "murmur-fmix64";
    case HashKind::kSipHash24: return "siphash-2-4";
  }
  return "unknown";
}

}  // namespace rfid::hash
