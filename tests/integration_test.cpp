// Cross-module integration tests: full monitoring campaigns that exercise
// server + protocol + radio + attack + estimate together, the way the
// examples and benches do.
#include <gtest/gtest.h>

#include "attack/split_attack.h"
#include "attack/utrp_attack.h"
#include "protocol/collect_all.h"
#include "protocol/trp.h"
#include "protocol/utrp.h"
#include "radio/timing.h"
#include "server/inventory_server.h"
#include "sim/event_queue.h"
#include "sim/trial_runner.h"
#include "tag/tag_set.h"
#include "util/random.h"

namespace {

using rfid::protocol::MonitoringPolicy;
using rfid::server::GroupConfig;
using rfid::server::InventoryServer;
using rfid::server::ProtocolKind;
using rfid::tag::TagSet;

TEST(Integration, MonitoringCampaignDetectsTheftAtTheRightRound) {
  // A warehouse runs nightly TRP rounds; the theft happens before round 3
  // and must be flagged from round 3 onward.
  rfid::util::Rng rng(1);
  InventoryServer server;
  TagSet set = TagSet::make_random(400, rng);
  GroupConfig cfg;
  cfg.name = "warehouse";
  cfg.policy = MonitoringPolicy{.tolerated_missing = 5, .confidence = 0.95};
  const auto id = server.enroll(set, cfg);
  const rfid::protocol::TrpReader reader;

  int first_alert_round = -1;
  for (int round = 1; round <= 6; ++round) {
    if (round == 3) (void)set.steal_random(120, rng);  // the heist
    const auto c = server.challenge_trp(id, rng);
    const auto verdict =
        server.submit_trp(id, c, reader.scan(set.tags(), c, rng));
    if (!verdict.intact && first_alert_round < 0) first_alert_round = round;
    if (round < 3) {
      EXPECT_TRUE(verdict.intact) << "round " << round;
    }
  }
  EXPECT_EQ(first_alert_round, 3);
  EXPECT_GE(server.alerts().size(), 1u);
}

TEST(Integration, TrpVersusCollectAllSlotCounts) {
  // Fig. 4's qualitative claim at one data point: TRP uses fewer slots than
  // collect-all for the same monitoring task.
  rfid::util::Rng rng(2);
  const TagSet set = TagSet::make_random(1000, rng);
  const rfid::hash::SlotHasher hasher;
  const auto trp_plan = rfid::math::optimize_trp_frame(1000, 10, 0.95);
  const auto baseline = rfid::protocol::run_collect_all(
      set.tags(), hasher, {.stop_after_collected = 1000 - 10}, rng);
  EXPECT_LT(trp_plan.frame_size, baseline.total_slots);
}

TEST(Integration, UtrpCampaignSurvivesManyRoundsThenCatchesSplitAttack) {
  rfid::util::Rng rng(3);
  InventoryServer server;
  TagSet set = TagSet::make_random(300, rng);
  GroupConfig cfg;
  cfg.name = "cage";
  cfg.policy = MonitoringPolicy{.tolerated_missing = 5, .confidence = 0.95};
  cfg.protocol = ProtocolKind::kUtrp;
  cfg.comm_budget = 20;
  const auto id = server.enroll(set, cfg);
  const rfid::protocol::UtrpReader reader;

  // Five honest rounds keep counters in sync.
  for (int round = 0; round < 5; ++round) {
    const auto c = server.challenge_utrp(id, rng);
    const auto scan = reader.scan(set.tags(), c);
    ASSERT_TRUE(server.submit_utrp(id, c, scan.bitstring, true).intact);
    set.begin_round();
  }

  // Now the reader turns dishonest and splits the set.
  TagSet stolen = set.steal_random(6, rng);
  const auto c = server.challenge_utrp(id, rng);
  const auto attack = rfid::attack::run_utrp_split_attack(
      set.tags(), stolen.tags(), rfid::hash::SlotHasher{}, c, 20);
  const auto verdict = server.submit_utrp(id, c, attack.forged, true);
  EXPECT_FALSE(verdict.intact);
  EXPECT_TRUE(server.needs_resync(id));
}

TEST(Integration, TrpIsVulnerableWhereUtrpIsNot) {
  // The paper's core security comparison, run end-to-end on one population:
  // identical theft, identical budget-unbounded-within-reason adversary;
  // TRP is fooled, UTRP is not.
  rfid::util::Rng rng(4);
  const TagSet proto = TagSet::make_random(250, rng);
  const MonitoringPolicy policy{.tolerated_missing = 5, .confidence = 0.95};
  constexpr std::uint64_t kBudget = 20;

  int trp_fooled = 0;
  int utrp_fooled = 0;
  constexpr int kTrials = 30;
  for (int t = 0; t < kTrials; ++t) {
    rfid::util::Rng trial_rng(rfid::util::derive_seed(5, static_cast<std::uint64_t>(t)));
    TagSet set = proto;
    const rfid::protocol::TrpServer trp_server(set.ids(), policy);
    rfid::protocol::UtrpServer utrp_server(set, policy, kBudget);
    TagSet stolen = set.steal_random(6, trial_rng);

    const auto trp_c = trp_server.issue_challenge(trial_rng);
    const auto trp_attack = rfid::attack::run_trp_split_attack(
        set.tags(), stolen.tags(), rfid::hash::SlotHasher{}, trp_c, trial_rng);
    if (trp_server.verify(trp_c, trp_attack.forged).intact) ++trp_fooled;

    const auto utrp_c = utrp_server.issue_challenge(trial_rng);
    const auto utrp_attack = rfid::attack::run_utrp_split_attack(
        set.tags(), stolen.tags(), rfid::hash::SlotHasher{}, utrp_c, kBudget);
    if (utrp_server.verify(utrp_c, utrp_attack.forged).intact) ++utrp_fooled;
  }
  EXPECT_EQ(trp_fooled, kTrials);  // Alg. 4 always beats TRP
  EXPECT_LE(utrp_fooled, kTrials / 10);
}

TEST(Integration, TimingDerivedBudgetFlowsIntoOptimizer) {
  // Sec. 5.4 end-to-end: estimate STmin/STmax from the timing model, derive
  // the adversary's c from the deadline, and size the UTRP frame with it.
  rfid::util::Rng rng(6);
  const TagSet set = TagSet::make_random(500, rng);
  const rfid::radio::TimingModel timing;

  // Honest scan-time envelope from real walks.
  rfid::util::RunningStat scan_us;
  for (int t = 0; t < 10; ++t) {
    TagSet copy = set;
    rfid::protocol::UtrpChallenge c;
    c.frame_size = 700;
    for (std::uint32_t i = 0; i < c.frame_size; ++i) c.seeds.push_back(rng());
    const auto result =
        rfid::protocol::utrp_scan(copy.tags(), rfid::hash::SlotHasher{}, c);
    const std::uint64_t occupied = result.bitstring.count();
    scan_us.add(timing.utrp_scan_us(c.frame_size - occupied, occupied,
                                    result.reseeds));
  }
  const double deadline = scan_us.max() * 1.05;  // server sets t = STmax-ish
  const std::uint64_t c_budget = rfid::radio::communication_budget(
      deadline, scan_us.min(), /*comm_roundtrip_us=*/2000.0);
  EXPECT_GT(c_budget, 0u);
  EXPECT_LT(c_budget, 700u);

  const auto plan = rfid::math::optimize_utrp_frame(500, 5, 0.95, c_budget);
  EXPECT_GT(plan.predicted_detection, 0.95);
}

TEST(Integration, EventQueueDrivesAScanTimeline) {
  // Model one TRP frame as discrete events: query broadcast, then one event
  // per slot boundary; the finish time must equal the timing model's sum.
  rfid::util::Rng rng(7);
  const TagSet set = TagSet::make_random(120, rng);
  const rfid::hash::SlotHasher hasher;
  const rfid::radio::TimingModel timing;
  const std::uint32_t f = 150;
  const auto obs =
      rfid::radio::simulate_frame(set.tags(), hasher, rng(), f, {}, rng);

  rfid::sim::EventQueue queue;
  double finish_time = -1.0;
  queue.schedule_at(timing.query_broadcast_us, [&] {
    double t = queue.now();
    for (std::uint32_t slot = 0; slot < f; ++slot) {
      t += obs.bitstring.test(slot) ? timing.short_reply_slot_us
                                    : timing.empty_slot_us;
    }
    queue.schedule_at(t, [&] { finish_time = queue.now(); });
  });
  (void)queue.run();
  const std::uint64_t occupied = obs.bitstring.count();
  EXPECT_DOUBLE_EQ(finish_time, timing.trp_scan_us(f - occupied, occupied));
}

TEST(Integration, ParallelTrialsReproduceFig5Point) {
  // One Fig. 5 data point computed exactly the way the bench does, asserting
  // the detection probability clears alpha.
  constexpr std::uint64_t kTags = 500;
  constexpr std::uint64_t kTolerance = 10;
  const rfid::sim::TrialRunner runner;
  const auto result = runner.run_boolean(
      500, 2026, [&](std::uint64_t, rfid::util::Rng& rng) {
        TagSet set = TagSet::make_random(kTags, rng);
        const rfid::protocol::TrpServer server(
            set.ids(),
            MonitoringPolicy{.tolerated_missing = kTolerance, .confidence = 0.95});
        (void)set.steal_random(kTolerance + 1, rng);
        const auto c = server.issue_challenge(rng);
        const rfid::protocol::TrpReader reader;
        return !server.verify(c, reader.scan(set.tags(), c, rng)).intact;
      });
  EXPECT_GT(result.proportion(), 0.92);
  EXPECT_EQ(result.trials(), 500u);
}

}  // namespace
