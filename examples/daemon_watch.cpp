// daemon_watch — a warehouse under continuous monitoring, end to end.
//
// One MonitorDaemon life: 10 re-scan epochs over a churning population
// (growth at epoch 2, a theft at epoch 4, a zone outage across epochs 5-7)
// with two scripted process crashes along the way. The supervisor restarts
// the monitor, the journal replay carries the alert history across the
// crashes, and the run ends with the full sequenced alert log, per-epoch
// verdicts, and the daemon's metrics.
//
// Exits 1 (like warehouse_monitoring) because the scenario contains a
// theft: an intact exit code would be a lie.
#include <cstdlib>
#include <iostream>

#include "daemon/daemon.h"
#include "fault/daemon_fault.h"
#include "fault/fault.h"
#include "obs/expose.h"
#include "obs/metrics.h"
#include "storage/backend.h"

int main() {
  using namespace rfid;

  daemon::WarehouseConfig warehouse;
  warehouse.initial_tags = 120;
  warehouse.tolerance = 4;
  warehouse.zone_capacity = 40;
  warehouse.rounds = 2;
  // The script: the warehouse grows, then loses 8 tags of zone 0 to theft,
  // then zone 1's reader dies for three epochs.
  warehouse.churn.push_back(daemon::ChurnEvent{.epoch = 2, .enroll = 40});
  warehouse.churn.push_back(daemon::ChurnEvent{
      .epoch = 4, .enroll = 0, .decommission = 0, .steal = 8, .steal_from = 0});
  fault::FaultPlan dead_reader;
  dead_reader.reader_crashes.push_back(fault::CrashWindow{0.0, 0.0});
  for (std::uint64_t epoch = 5; epoch <= 7; ++epoch) {
    warehouse.zone_faults.push_back(
        {.epoch = epoch, .zone = 1, .plan = dead_reader});
  }

  // Two scripted process deaths: one straddling the checkpoint write, one
  // right at an epoch boundary.
  fault::DaemonFaultPlan crashes;
  crashes.crashes.push_back({3, fault::DaemonCrashPoint::kBeforeCheckpoint});
  crashes.crashes.push_back({6, fault::DaemonCrashPoint::kEpochStart});
  fault::DaemonFaultInjector faults(crashes);

  storage::MemoryBackend backend;
  obs::MetricsRegistry metrics;
  daemon::DaemonConfig config;
  config.seed = 2008;
  config.name = "warehouse-watch";
  config.epochs = 10;
  config.threads = 2;
  config.faults_on_retries = true;  // the outage is real, retries see it too
  config.debounce_epochs = 2;
  config.quarantine_after_epochs = 3;
  config.backend = &backend;
  config.faults = &faults;
  config.crash_hook = [&backend] { backend.crash(); };
  config.metrics = &metrics;

  daemon::MonitorDaemon daemon_instance(config, warehouse);
  const daemon::DaemonResult result = daemon_instance.run();

  std::cout << "=== continuous monitoring: " << result.epochs_completed
            << " epochs ===\n\nPer-epoch verdicts:\n";
  for (std::size_t epoch = 0; epoch < result.epoch_verdicts.size(); ++epoch) {
    std::cout << "  epoch " << epoch << ": "
              << daemon::to_string(result.epoch_verdicts[epoch]) << "\n";
  }

  std::cout << "\nSupervision: " << result.restarts << " restart(s) ("
            << result.crash_restarts << " crash, " << result.hang_restarts
            << " hang), " << result.replayed_alerts
            << " alert(s) replayed from the journal, last resume "
            << result.last_resume_us << " us\n";
  for (const daemon::DaemonEvent& event : result.events) {
    std::cout << "  " << daemon::to_string(event.kind)
              << " at epoch " << event.epoch << "\n";
  }

  std::cout << "\nAlert history (sequenced, crash-proof):\n"
            << daemon::render_alert_history(result.alerts);

  std::cout << "\nDaemon metrics:\n";
  std::cout << obs::render_prometheus(metrics.snapshot());

  bool violated = false;
  for (const daemon::EpochVerdict verdict : result.epoch_verdicts) {
    if (verdict == daemon::EpochVerdict::kViolated) violated = true;
  }
  return violated ? EXIT_FAILURE : EXIT_SUCCESS;
}
