// Microbenchmarks for the analytical kernel: g(n, x, f) evaluation and the
// Eq. (2)/(3) optimizers the server runs at enrollment time.
#include <benchmark/benchmark.h>

#include "math/detection.h"
#include "math/frame_optimizer.h"

namespace {

void BM_DetectionProbability(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const std::uint64_t x = 11;
  const std::uint64_t f = n + n / 14;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rfid::math::detection_probability(n, x, f));
  }
}

void BM_TrpOptimizer(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rfid::math::optimize_trp_frame(n, 10, 0.95));
  }
}

void BM_UtrpEq3Evaluation(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const std::uint64_t f = n + n / 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rfid::math::utrp_detection_probability(n, 10, 20, f));
  }
}

void BM_UtrpOptimizer(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rfid::math::optimize_utrp_frame(n, 10, 0.95, 20));
  }
}

}  // namespace

BENCHMARK(BM_DetectionProbability)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(BM_TrpOptimizer)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(BM_UtrpEq3Evaluation)->Arg(100)->Arg(1000);
BENCHMARK(BM_UtrpOptimizer)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);
