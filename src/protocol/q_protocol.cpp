#include "protocol/q_protocol.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/expect.h"

namespace rfid::protocol {

QProtocolResult run_q_protocol(std::span<const tag::Tag> present,
                               const QProtocolConfig& config, util::Rng& rng) {
  RFID_EXPECT(config.stop_after_collected <= present.size(),
              "cannot collect more tags than are present");
  RFID_EXPECT(config.step_c > 0.0 && config.step_c <= 1.0,
              "C must be in (0, 1]");
  RFID_EXPECT(config.initial_q >= 0.0 && config.initial_q <= 15.0,
              "Q must be within the spec's 0..15");

  QProtocolResult result;
  result.final_q = config.initial_q;
  if (config.stop_after_collected == 0) return result;

  double qfp = config.initial_q;
  std::uint64_t uncollected = present.size();
  std::vector<std::uint32_t> histogram;

  // One Query/QueryAdjust: every unidentified tag draws a counter in
  // [0, 2^Q); the reader then steps through slots with QueryReps.
  auto issue_query = [&](std::uint32_t q) {
    const std::uint32_t slots = 1u << q;
    histogram.assign(slots, 0);
    for (std::uint64_t i = 0; i < uncollected; ++i) {
      ++histogram[rng.below(slots)];
    }
  };

  auto current_q = static_cast<std::uint32_t>(std::llround(qfp));
  issue_query(current_q);
  ++result.query_adjusts;  // the opening Query
  ++result.total_slots;    // ... which occupies the medium like any broadcast

  std::uint32_t slot = 0;
  while (result.collected < config.stop_after_collected) {
    RFID_ENSURE(uncollected > 0, "ran out of tags before the target");

    if (slot >= histogram.size() ||
        static_cast<std::uint32_t>(std::llround(qfp)) != current_q) {
      // Round exhausted, or the Q estimate moved: re-randomize everyone
      // still unidentified (QueryAdjust / fresh Query).
      current_q = static_cast<std::uint32_t>(std::llround(qfp));
      issue_query(current_q);
      ++result.query_adjusts;
      ++result.total_slots;  // the adjust broadcast occupies the medium too
      slot = 0;
      continue;
    }

    const std::uint32_t occupancy = histogram[slot];
    ++slot;
    ++result.total_slots;
    if (occupancy == 0) {
      ++result.empty_slots;
      qfp = std::max(0.0, qfp - config.step_c);
    } else if (occupancy == 1) {
      ++result.singleton_slots;
      ++result.collected;
      --uncollected;
    } else {
      ++result.collision_slots;
      qfp = std::min(15.0, qfp + config.step_c);
      // Colliding tags back off until the next Query/QueryAdjust; they are
      // re-included by the next issue_query via `uncollected`.
    }
  }
  result.final_q = qfp;
  return result;
}

}  // namespace rfid::protocol
