#include "obs/trace.h"

#include <chrono>
#include <sstream>

#include "util/expect.h"

namespace rfid::obs {

double steady_now_us() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double, std::micro>(now).count();
}

Tracer::Tracer(Clock clock, std::size_t max_spans)
    : clock_(std::move(clock)), max_spans_(max_spans) {
  RFID_EXPECT(clock_ != nullptr, "tracer needs a clock");
  RFID_EXPECT(max_spans_ >= 1, "tracer must hold at least one span");
}

std::uint64_t Tracer::begin_span(std::string_view name, std::uint64_t parent) {
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    return kNoSpan;
  }
  Span span;
  span.id = next_id_++;
  span.parent = parent;
  span.name = std::string(name);
  span.start_us = clock_();
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

Span* Tracer::find(std::uint64_t id) {
  if (id == kNoSpan) return nullptr;
  for (Span& span : spans_) {
    if (span.id == id) return &span;
  }
  return nullptr;
}

void Tracer::annotate(std::uint64_t span, std::string_view key,
                      std::string_view value) {
  if (Span* s = find(span)) {
    s->attributes.emplace_back(std::string(key), std::string(value));
  }
}

void Tracer::end_span(std::uint64_t span) {
  Span* s = find(span);
  if (s == nullptr || s->ended) return;
  s->end_us = clock_();
  s->ended = true;
}

void Tracer::clear() { spans_.clear(); }

namespace {

void render_subtree(const std::vector<Span>& spans, std::uint64_t parent,
                    int depth, std::ostringstream& os) {
  for (const Span& span : spans) {
    if (span.parent != parent) continue;
    for (int i = 0; i < depth; ++i) os << "  ";
    os << span.name << " [" << span.start_us << ", ";
    if (span.ended) {
      os << span.end_us << ") dur=" << span.duration_us() << "us";
    } else {
      os << "...) open";
    }
    for (const auto& [key, value] : span.attributes) {
      os << ' ' << key << '=' << value;
    }
    os << '\n';
    render_subtree(spans, span.id, depth + 1, os);
  }
}

}  // namespace

std::string Tracer::render() const {
  std::ostringstream os;
  render_subtree(spans_, kNoSpan, 0, os);
  return os.str();
}

}  // namespace rfid::obs
