#include "storage/backend.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/expect.h"

namespace rfid::storage {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// MemoryBackend

bool MemoryBackend::exists(const std::string& name) const {
  return files_.contains(name);
}

std::vector<std::string> MemoryBackend::list() const {
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, file] : files_) names.push_back(name);
  return names;
}

const MemoryBackend::File& MemoryBackend::file(const std::string& name) const {
  const auto it = files_.find(name);
  if (it == files_.end()) throw IoError("no such file: " + name);
  return it->second;
}

std::string MemoryBackend::read(const std::string& name) const {
  const File& f = file(name);
  return f.durable + f.buffered;
}

void MemoryBackend::append(const std::string& name, std::string_view bytes) {
  files_[name].buffered.append(bytes);
}

void MemoryBackend::flush(const std::string& name) {
  File& f = files_[name];
  f.durable += f.buffered;
  f.buffered.clear();
}

void MemoryBackend::rename(const std::string& from, const std::string& to) {
  const auto it = files_.find(from);
  if (it == files_.end()) throw IoError("rename source missing: " + from);
  File moved = std::move(it->second);
  files_.erase(it);
  files_[to] = std::move(moved);
}

void MemoryBackend::remove(const std::string& name) {
  if (files_.erase(name) == 0) throw IoError("remove target missing: " + name);
}

void MemoryBackend::crash() {
  for (auto& [name, f] : files_) f.buffered.clear();
}

void MemoryBackend::corrupt_durable(const std::string& name,
                                    std::uint64_t offset, unsigned bit) {
  RFID_EXPECT(bit < 8, "bit index must be 0-7");
  const auto it = files_.find(name);
  if (it == files_.end()) throw IoError("no such file: " + name);
  std::string& durable = it->second.durable;
  if (durable.empty()) return;
  const auto flipped = static_cast<unsigned char>(
      static_cast<unsigned char>(durable[offset % durable.size()]) ^
      (1u << bit));
  durable[offset % durable.size()] = static_cast<char>(flipped);
}

std::string MemoryBackend::durable_bytes(const std::string& name) const {
  return file(name).durable;
}

// ---------------------------------------------------------------------------
// FileBackend

FileBackend::FileBackend(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) throw IoError("cannot create directory " + dir_ + ": " + ec.message());
}

std::string FileBackend::path_of(const std::string& name) const {
  RFID_EXPECT(name.find('/') == std::string::npos &&
                  name.find("..") == std::string::npos,
              "backend file names must be flat");
  return dir_ + "/" + name;
}

bool FileBackend::exists(const std::string& name) const {
  return fs::exists(path_of(name));
}

std::vector<std::string> FileBackend::list() const {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (entry.is_regular_file()) names.push_back(entry.path().filename().string());
  }
  if (ec) throw IoError("cannot list " + dir_ + ": " + ec.message());
  return names;
}

std::string FileBackend::read(const std::string& name) const {
  std::ifstream in(path_of(name), std::ios::binary);
  if (!in) throw IoError("cannot open " + path_of(name));
  std::ostringstream out;
  out << in.rdbuf();
  if (in.bad()) throw IoError("read failed: " + path_of(name));
  return std::move(out).str();
}

void FileBackend::append(const std::string& name, std::string_view bytes) {
  std::ofstream out(path_of(name), std::ios::binary | std::ios::app);
  if (!out) throw IoError("cannot open for append: " + path_of(name));
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out.good()) throw IoError("append failed: " + path_of(name));
}

void FileBackend::flush(const std::string& name) {
  // Appends above already push to the OS; durability against power loss
  // would need fsync, which std::ostream cannot express (documented in
  // docs/persistence.md). Existence check keeps the contract symmetric
  // with MemoryBackend.
  if (!exists(name)) throw IoError("flush target missing: " + path_of(name));
}

void FileBackend::rename(const std::string& from, const std::string& to) {
  std::error_code ec;
  fs::rename(path_of(from), path_of(to), ec);
  if (ec) throw IoError("rename " + from + " -> " + to + ": " + ec.message());
}

void FileBackend::remove(const std::string& name) {
  std::error_code ec;
  if (!fs::remove(path_of(name), ec) || ec) {
    throw IoError("remove " + name + ": " + ec.message());
  }
}

}  // namespace rfid::storage
