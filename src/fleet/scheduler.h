// Deadline-aware work-stealing thread pool for zone sessions.
//
// The fleet orchestrator hands this pool one task per (zone, attempt); each
// task is a whole wire session — milliseconds of simulated protocol work —
// so scheduling overhead is cold and the interesting policy is *order*:
//
//  * Every worker owns a priority queue ordered earliest-deadline-first
//    (UTRP zones whose Alg. 5 budget is closest to expiry run first; ties
//    break by submission sequence, so equal-deadline tasks are FIFO).
//  * submit() round-robins tasks across workers, except that a worker
//    re-submitting from inside a task (a zone retry) pushes to its own
//    queue — the requeue lands on provably-alive capacity without a trip
//    through another worker's lock.
//  * An idle worker steals: it peeks every other queue and takes the
//    globally earliest deadline on offer, so a backlog behind a slow worker
//    drains through whoever is free (the hammer test pins this down by
//    blocking one worker and asserting its queue still empties).
//
// Determinism contract: the pool promises nothing about which thread runs a
// task or in what wall-clock order — fleet results must be derived from task
// *identity* (inventory, zone, attempt), never from scheduling. That is why
// FleetOrchestrator seeds every session from (fleet seed, inventory, zone,
// attempt) and aggregates in index order: bit-identical on 1 or 64 threads.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rfid::fleet {

class FleetScheduler {
 public:
  using Task = std::function<void()>;

  /// `threads` = 0 picks the hardware concurrency (at least 1). Workers
  /// start immediately and sleep until work arrives.
  explicit FleetScheduler(unsigned threads = 0);
  /// Waits for every submitted task (requeues included), then joins.
  ~FleetScheduler();

  FleetScheduler(const FleetScheduler&) = delete;
  FleetScheduler& operator=(const FleetScheduler&) = delete;

  /// Enqueues `fn` with an earliest-deadline-first priority (microseconds;
  /// +infinity = "whenever"). Safe to call from worker threads (a task may
  /// submit its own retry).
  void submit(double deadline_us, Task fn);

  /// Blocks until every task submitted so far — and every task those tasks
  /// submitted — has finished.
  void wait_idle();

  /// Deadline-bounded wait_idle(): returns true if the pool went idle
  /// within `timeout`, false if work is still outstanding. A watchdog that
  /// must not inherit a wedged session's hang polls this instead of
  /// blocking forever.
  [[nodiscard]] bool wait_idle_for(std::chrono::milliseconds timeout);

  /// Deterministic shutdown. drain=true executes every queued task first
  /// (equivalent to wait_idle() then join); drain=false abandons tasks that
  /// have not started — in-flight tasks still run to completion, queued
  /// ones are discarded and counted in abandoned(). Idempotent; after
  /// stop() further submits are discarded (counted as abandoned), so a
  /// racing requeue from an in-flight task cannot resurrect the pool.
  void stop(bool drain);

  /// Tasks discarded by stop(drain=false) or submitted after stop().
  [[nodiscard]] std::uint64_t abandoned() const noexcept {
    return abandoned_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] unsigned threads() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }
  /// Tasks completed so far.
  [[nodiscard]] std::uint64_t executed() const noexcept {
    return executed_.load(std::memory_order_relaxed);
  }
  /// Tasks a worker took from another worker's queue. Timing-dependent:
  /// never fold this into anything that must be deterministic.
  [[nodiscard]] std::uint64_t stolen() const noexcept {
    return stolen_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    double deadline_us;
    std::uint64_t sequence;
    Task fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.deadline_us != b.deadline_us) return a.deadline_us > b.deadline_us;
      return a.sequence > b.sequence;
    }
  };
  struct Worker {
    std::mutex mu;
    std::priority_queue<Entry, std::vector<Entry>, Later> queue;
  };

  void worker_loop(std::size_t self);
  [[nodiscard]] bool try_take(std::size_t self, Entry& out);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::condition_variable idle_cv_;
  bool shutdown_ = false;
  bool joined_ = false;  // threads reaped (stop() or destructor ran)

  std::atomic<bool> stopped_{false};  // discard further submissions
  std::atomic<std::uint64_t> next_sequence_{0};
  std::atomic<std::size_t> pending_{0};      // queued, not yet taken
  std::atomic<std::size_t> outstanding_{0};  // submitted, not yet finished
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> stolen_{0};
  std::atomic<std::uint64_t> abandoned_{0};
};

}  // namespace rfid::fleet
