// EPC C1G2 "Q algorithm" ID collection — the standardized baseline.
//
// Commercial Gen2 readers do not size frames with Lee et al.'s estimator;
// they run the slot-count (Q) algorithm from the EPCglobal Class-1 Gen-2
// spec: a float Qfp is nudged up on collisions and down on empties, and
// whenever round(Qfp) departs from the current Q the reader issues a
// QueryAdjust that makes every unidentified tag re-draw a slot counter in
// [0, 2^Q). This module implements that loop at slot granularity so the
// Fig. 4-style comparison can include the protocol actually deployed in the
// field (bench/bench_baselines).
//
// Model notes: tags draw true random counters (Gen2 tags carry an RNG —
// unlike TRP's deterministic hash); every QueryRep/Query/QueryAdjust
// occupies one slot-equivalent; singleton slots deliver one ID.
#pragma once

#include <cstdint>
#include <span>

#include "tag/tag.h"
#include "util/random.h"

namespace rfid::protocol {

struct QProtocolConfig {
  double initial_q = 4.0;   // spec default
  double step_c = 0.3;      // spec suggests 0.1 <= C <= 0.5
  std::uint64_t stop_after_collected = 0;
};

struct QProtocolResult {
  std::uint64_t total_slots = 0;
  std::uint64_t collected = 0;
  std::uint64_t empty_slots = 0;
  std::uint64_t singleton_slots = 0;
  std::uint64_t collision_slots = 0;
  std::uint64_t query_adjusts = 0;  // re-randomization broadcasts issued
  double final_q = 0.0;
};

/// Runs the Q algorithm until `stop_after_collected` IDs are gathered.
[[nodiscard]] QProtocolResult run_q_protocol(std::span<const tag::Tag> present,
                                             const QProtocolConfig& config,
                                             util::Rng& rng);

}  // namespace rfid::protocol
