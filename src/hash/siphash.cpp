#include "hash/siphash.h"

#include <cstring>

namespace rfid::hash {

namespace {

[[nodiscard]] constexpr std::uint64_t rotl64(std::uint64_t x, int b) noexcept {
  return (x << b) | (x >> (64 - b));
}

struct SipState {
  std::uint64_t v0, v1, v2, v3;

  explicit constexpr SipState(SipKey key) noexcept
      : v0(key.k0 ^ 0x736f6d6570736575ULL),
        v1(key.k1 ^ 0x646f72616e646f6dULL),
        v2(key.k0 ^ 0x6c7967656e657261ULL),
        v3(key.k1 ^ 0x7465646279746573ULL) {}

  constexpr void round() noexcept {
    v0 += v1; v1 = rotl64(v1, 13); v1 ^= v0; v0 = rotl64(v0, 32);
    v2 += v3; v3 = rotl64(v3, 16); v3 ^= v2;
    v0 += v3; v3 = rotl64(v3, 21); v3 ^= v0;
    v2 += v1; v1 = rotl64(v1, 17); v1 ^= v2; v2 = rotl64(v2, 32);
  }

  constexpr void compress(std::uint64_t m) noexcept {
    v3 ^= m;
    round();
    round();
    v0 ^= m;
  }

  [[nodiscard]] constexpr std::uint64_t finalize() noexcept {
    v2 ^= 0xff;
    round();
    round();
    round();
    round();
    return v0 ^ v1 ^ v2 ^ v3;
  }
};

}  // namespace

std::uint64_t siphash24(std::span<const std::byte> data, SipKey key) noexcept {
  SipState s(key);
  const std::size_t full_words = data.size() / 8;
  for (std::size_t i = 0; i < full_words; ++i) {
    std::uint64_t m;
    std::memcpy(&m, data.data() + i * 8, 8);  // little-endian assumed
    s.compress(m);
  }
  // Final word: remaining bytes plus the message length in the top byte.
  std::uint64_t last = static_cast<std::uint64_t>(data.size() & 0xffU) << 56;
  const std::size_t tail = full_words * 8;
  for (std::size_t i = 0; i + tail < data.size(); ++i) {
    last |= static_cast<std::uint64_t>(data[tail + i]) << (8 * i);
  }
  s.compress(last);
  return s.finalize();
}

std::uint64_t siphash24_u64(std::uint64_t value, SipKey key) noexcept {
  SipState s(key);
  s.compress(value);
  // One 8-byte word consumed; length byte is 8.
  s.compress(static_cast<std::uint64_t>(8) << 56);
  return s.finalize();
}

}  // namespace rfid::hash
