// MonitorDaemon: continuous monitoring as a supervised service.
//
// Everything below the daemon answers "is the inventory intact RIGHT NOW?"
// — one planned fleet run, one verdict. A warehouse asks a different
// question: "has anything gone missing SINCE WE STARTED WATCHING?", asked
// every re-scan interval, across restarts of the monitoring process, while
// tags are enrolled, retired, and stolen under it. MonitorDaemon closes
// that loop:
//
//   * Epochs. Monitoring proceeds in numbered epochs. Each epoch derives a
//     fresh fleet seed from (daemon seed, epoch), re-audits the population
//     (tag churn applied), re-plans zones so Σ m_i = M still holds, and
//     executes one FleetOrchestrator run. Epoch results are therefore pure
//     functions of (daemon seed, warehouse script, epoch) — the property
//     every resume guarantee below leans on.
//
//   * Supervision. The epoch loop runs on a monitor thread; the caller's
//     thread is the supervisor. A scripted crash (fault::CrashInjected —
//     from the daemon fault injector or a FaultyBackend under the journal)
//     unwinds the monitor thread; a scripted hang parks it until the
//     supervisor notices the missed progress deadline and kills it
//     cooperatively (abort switch + injector kill). Either way the
//     supervisor restarts the monitor with capped exponential backoff, up
//     to max_restarts, then gives up loudly.
//
//   * Resume. Per epoch the daemon journals ONE atomic checkpoint record
//     (storage/daemon_journal.h): epoch counter, verdict, zone health
//     machines, next alert sequence, and the alerts that epoch raised. A
//     restarted monitor replays the journal and continues at the first
//     uncheckpointed epoch. Because alerts ride inside the checkpoint, a
//     crash on either side of the write yields the same alert history as
//     an uncrashed run — never a lost alert, never a duplicate
//     (tests/daemon_torture_test.cpp sweeps every crash point).
//
//   * Debounce and escalation. A zone failing one epoch is noise; failing
//     k in a row is a signal. The per-zone health machine latches theft
//     evidence immediately (kZoneViolated), escalates after
//     debounce_epochs consecutive misses (kZoneEscalated), quarantines
//     after quarantine_after_epochs (kZoneQuarantined; a quarantined
//     zone's failures degrade the epoch verdict instead of making it
//     inconclusive), and recovers a quarantined zone after
//     quarantine_cooldown_epochs consecutive intact epochs
//     (kZoneRecovered). Every transition is a typed, sequenced DaemonAlert.
//
//   * Churn. The warehouse script enrolls, decommissions, and steals tags
//     between epochs. The daemon re-plans each epoch and mirrors the zone
//     layout into a server::InventoryServer registry via re_enroll /
//     decommission — group identities survive re-planning instead of
//     being rebuilt from scratch.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "fault/daemon_fault.h"
#include "fleet/fleet.h"
#include "obs/metrics.h"
#include "server/inventory_server.h"
#include "storage/backend.h"
#include "storage/daemon_journal.h"

namespace rfid::daemon {

/// One epoch's aggregated verdict. kDegraded is the daemon-only state:
/// every failure this epoch came from zones already under quarantine, so
/// the pigeonhole guarantee is weakened exactly where the operator was
/// already alerted — not silently, and not escalated again.
enum class EpochVerdict : std::uint8_t {
  kIntact = 0,
  kViolated = 1,
  kInconclusive = 2,
  kDegraded = 3,
};

enum class DaemonAlertKind : std::uint8_t {
  kZoneViolated = 0,     // theft evidence; latched, raised once per incident
  kZoneEscalated = 1,    // debounce_epochs consecutive missed epochs
  kZoneQuarantined = 2,  // quarantine_after_epochs consecutive misses
  kZoneRecovered = 3,    // quarantined zone served its intact cooldown
  kReplanned = 4,        // churn changed the zone count; health reset
  kStaleJournalQuarantined = 5,  // recovered state refused (config changed)
  /// Fused (k > 1) zones only: the per-reader quarantine tier.
  kReaderQuarantined = 6,  // reader suspect/incomplete too many epochs
  kReaderRecovered = 7,    // quarantined reader reinstated after cooldown
};

[[nodiscard]] std::string_view to_string(EpochVerdict verdict) noexcept;
[[nodiscard]] std::string_view to_string(DaemonAlertKind kind) noexcept;

/// A committed alert. Sequence numbers are strictly monotonic across the
/// daemon's entire life — replay, new epochs, and restarts included.
struct DaemonAlert {
  std::uint64_t sequence = 0;
  DaemonAlertKind kind = DaemonAlertKind::kZoneViolated;
  std::uint64_t epoch = 0;
  std::uint64_t zone = 0;  // meaningful for the kZone* kinds
  std::string detail;
  /// kZoneViolated with the identification drill-down enabled: the stolen
  /// tags the campaign named, in enrolled order. Empty otherwise.
  std::vector<tag::TagId> missing_tags;
};

/// Canonical one-line-per-alert rendering; the string two daemon lives must
/// agree on bit-for-bit for kill-resume equivalence.
[[nodiscard]] std::string render_alert_history(
    std::span<const DaemonAlert> alerts);

/// Scripted population change, applied at the start of its epoch (before
/// planning). Deterministic: a resumed daemon re-derives the same tags.
struct ChurnEvent {
  std::uint64_t epoch = 0;
  std::uint64_t enroll = 0;        // fresh tags appended to the population
  std::uint64_t decommission = 0;  // oldest tags retired (from the front)
  std::uint64_t steal = 0;         // tags marked physically absent...
  std::uint64_t steal_from = 0;    // ...starting at this population index
};

/// The monitored warehouse: population, guarantee, and per-epoch scripts.
struct WarehouseConfig {
  fleet::Protocol protocol = fleet::Protocol::kTrp;
  std::uint64_t initial_tags = 120;
  /// Global tolerance M. Re-planning clamps it so the planner's
  /// M + zones <= N invariant survives decommissioning.
  std::uint64_t tolerance = 4;
  std::uint64_t zone_capacity = 40;  // 0 = single zone
  double alpha = 0.95;
  math::EmptySlotModel model = math::EmptySlotModel::kPoissonApprox;
  std::uint64_t rounds = 2;  // monitoring rounds per zone session
  std::uint64_t comm_budget = 100;  // UTRP only
  std::uint32_t slack_slots = 8;    // UTRP only
  wire::SessionConfig session;
  std::vector<ChurnEvent> churn;
  /// Scripted zone outages: the fault plan rides on that zone's sessions
  /// during that epoch (pair with DaemonConfig::faults_on_retries to make
  /// a zone miss the whole epoch).
  struct ZoneFault {
    std::uint64_t epoch = 0;
    std::uint64_t zone = 0;
    fault::FaultPlan plan;
  };
  std::vector<ZoneFault> zone_faults;
  /// Reader redundancy per zone (fusion.readers > 1 runs k overlapping
  /// sessions with trust-weighted vote fusion; see fusion/fusion.h). The
  /// daemon adds the per-reader quarantine tier on top: a reader suspect
  /// or incomplete quarantine_after_epochs epochs in a row is excluded
  /// from subsequent scans until its cooldown passes.
  fusion::FusionConfig fusion;
  /// Persistently adversarial readers, as (zone, reader) pairs — every
  /// epoch those readers forge "all enrolled tags present". The scenario
  /// the quarantine tier exists for.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> dishonest_readers;
  /// Identification drill-down, passed through to every epoch's fleet run:
  /// when enabled, a zone verdict of violated triggers a missing-tag
  /// identification campaign and the kZoneViolated alert carries the named
  /// stolen tags (DaemonAlert::missing_tags), durably, through the
  /// checkpoint. Deliberately OUTSIDE the config fingerprint: it enriches
  /// future alerts without changing what any replayed health state means,
  /// so flipping it across a restart must not quarantine the journal.
  fleet::IdentifyDrillConfig identify;
};

struct DaemonConfig {
  std::uint64_t seed = 1;
  std::string name = "monitor";
  std::uint64_t epochs = 4;  // epochs to complete before run() returns
  unsigned threads = 1;      // fleet worker threads per epoch
  std::uint32_t max_zone_attempts = 3;
  bool faults_on_retries = false;
  /// Health state machine thresholds (consecutive epochs).
  std::uint32_t debounce_epochs = 2;
  std::uint32_t quarantine_after_epochs = 4;
  std::uint32_t quarantine_cooldown_epochs = 1;
  /// Supervisor: progress deadline before a hung monitor is killed, and
  /// the capped exponential restart backoff.
  std::uint64_t hang_timeout_ms = 2000;
  std::uint64_t backoff_initial_ms = 1;
  std::uint64_t backoff_cap_ms = 50;
  std::uint64_t max_restarts = 8;
  /// Storage for both journals (required; not owned).
  storage::StorageBackend* backend = nullptr;
  std::string journal_name = "daemon.journal";
  std::string fleet_journal_name = "fleet.journal";
  /// Fold the daemon journal into [start][snapshot] every N checkpoints
  /// (0 = never): keeps resume O(1) in the daemon's lifetime. Pure storage
  /// layout — replay is bit-identical with or without rotation, so this
  /// knob is deliberately outside the config fingerprint.
  std::uint64_t journal_rotate_after = 0;
  /// External stop switch (not owned; may be null). When it flips, the
  /// in-flight epoch aborts cooperatively, no restart is attempted, and
  /// run() returns early with gave_up = true — every checkpointed epoch
  /// stays durable and resumable, exactly as after a supervisor kill. The
  /// service wires its drain-budget abort flag here so a blown stop()
  /// budget also unwinds in-flight watches.
  std::atomic<bool>* abort = nullptr;
  /// Scripted crashes/hangs (not owned; may be null).
  fault::DaemonFaultInjector* faults = nullptr;
  /// Invoked between a caught crash and the journal replay — the torture
  /// harness's seam for MemoryBackend::crash() (drop unflushed bytes).
  std::function<void()> crash_hook;
  obs::MetricsRegistry* metrics = nullptr;  // not owned; may be null
};

enum class DaemonEventKind : std::uint8_t {
  kCrashRestart = 0,
  kHangRestart = 1,
  kGaveUp = 2,
};

[[nodiscard]] std::string_view to_string(DaemonEventKind kind) noexcept;

/// Supervision log entry. Wall-clock territory: how many restarts happen
/// and where depends on the fault script, not on thread timing — but these
/// are diagnostics, deliberately outside the deterministic alert history.
struct DaemonEvent {
  DaemonEventKind kind = DaemonEventKind::kCrashRestart;
  std::uint64_t epoch = 0;  // first uncheckpointed epoch at the time
};

struct DaemonResult {
  /// Full alert history, replayed + newly raised, sequence order.
  std::vector<DaemonAlert> alerts;
  /// Verdict of every committed epoch, epoch order (replayed included).
  std::vector<EpochVerdict> epoch_verdicts;
  std::uint64_t epochs_completed = 0;
  std::uint64_t restarts = 0;
  std::uint64_t crash_restarts = 0;
  std::uint64_t hang_restarts = 0;
  bool gave_up = false;  // max_restarts exhausted before config.epochs
  /// Alerts restored from the journal across all resumes (initial open
  /// included). Replay never re-counts them in rfidmon_daemon_alerts_total.
  std::uint64_t replayed_alerts = 0;
  double last_resume_us = 0.0;  // journal replay + state rebuild, wall clock
  std::uint64_t journal_append_failures = 0;
  std::vector<DaemonEvent> events;
};

class MonitorDaemon {
 public:
  MonitorDaemon(DaemonConfig config, WarehouseConfig warehouse);
  ~MonitorDaemon();

  MonitorDaemon(const MonitorDaemon&) = delete;
  MonitorDaemon& operator=(const MonitorDaemon&) = delete;

  /// Runs (and supervises) the epoch loop until config.epochs epochs are
  /// checkpointed, restarts are exhausted, or a non-crash exception
  /// escapes a zone (rethrown). Call once.
  [[nodiscard]] DaemonResult run();

  /// The server-side zone registry the daemon maintains through churn:
  /// one group per zone, re-enrolled in place on re-plans, decommissioned
  /// when the zone count shrinks. Valid after run().
  [[nodiscard]] const server::InventoryServer& registry() const noexcept {
    return registry_;
  }

 private:
  struct Population {
    std::vector<tag::Tag> tags;
    std::vector<bool> stolen;
  };

  [[nodiscard]] std::uint64_t config_fingerprint() const;
  [[nodiscard]] Population population_at(std::uint64_t epoch) const;
  void resume_from_journal(DaemonResult& result);
  void sync_registry(const tag::TagSet& tags, const server::GroupPlan& plan);
  void run_epoch(std::uint64_t epoch);
  void monitor_main();
  void supervise();

  DaemonConfig config_;
  WarehouseConfig warehouse_;
  bool ran_ = false;

  std::unique_ptr<storage::DaemonJournal> journal_;

  // Monitor state: owned by the monitor thread while it runs; the
  // supervisor touches it only between joins. Rebuilt wholesale from the
  // journal on every resume — in-memory state is a cache, never the truth.
  std::vector<storage::DaemonZoneHealthRecord> healths_;
  std::vector<storage::DaemonAlertRecord> alerts_;
  std::vector<storage::DaemonAlertRecord> pending_alerts_;  // next checkpoint
  std::vector<EpochVerdict> verdicts_;
  std::uint64_t next_alert_sequence_ = 0;

  server::InventoryServer registry_;
  std::vector<server::GroupId> registry_zones_;

  // Supervision plumbing.
  std::atomic<std::uint64_t> epochs_committed_{0};
  std::atomic<bool> abort_{false};
  std::mutex wd_mu_;
  std::condition_variable wd_cv_;
  bool monitor_done_ = false;
  bool kill_requested_ = false;
  std::exception_ptr monitor_error_;
};

}  // namespace rfid::daemon
