#include "wire/session.h"

#include <map>
#include <memory>
#include <optional>
#include <utility>

#include "util/expect.h"

namespace rfid::wire {

namespace {

// The session state machine is protocol-agnostic; an Adapter supplies the
// five protocol-specific operations (issue/encode/accept/scan/verify). Both
// adapters keep scans one-per-round — retransmitted reports reuse the stored
// bitstring, which matters for UTRP where a re-scan would advance counters.

struct TrpAdapter {
  const protocol::TrpServer& server;
  std::span<const tag::Tag> present;
  const SessionConfig& config;

  using Challenge = protocol::TrpChallenge;

  [[nodiscard]] Challenge issue(util::Rng& rng) const {
    return server.issue_challenge(rng);
  }
  [[nodiscard]] std::vector<std::byte> encode_challenge(std::uint64_t round,
                                                        const Challenge& c) const {
    return encode(TrpChallengeMsg{round, c});
  }
  [[nodiscard]] static bool is_challenge(MessageType type) {
    return type == MessageType::kTrpChallenge;
  }
  [[nodiscard]] static std::pair<std::uint64_t, Challenge> decode_challenge_frame(
      std::span<const std::byte> frame) {
    const TrpChallengeMsg msg = decode_trp_challenge(frame);
    return {msg.round, msg.challenge};
  }
  /// Returns (bitstring, scan duration). `rng` drives channel randomness.
  [[nodiscard]] std::pair<bits::Bitstring, double> scan(const Challenge& c,
                                                        util::Rng& rng) const {
    const protocol::TrpReader reader;
    const auto obs = reader.scan_observed(present, c, rng);
    const double us = config.timing.trp_scan_us(
        obs.empty_slots, obs.single_slots + obs.collision_slots);
    return {obs.bitstring, us};
  }
  [[nodiscard]] protocol::Verdict verify(const Challenge& c,
                                         const bits::Bitstring& bs,
                                         double /*elapsed_us*/) const {
    return server.verify(c, bs);
  }
};

struct UtrpAdapter {
  protocol::UtrpServer& server;
  std::span<tag::Tag> present;
  const SessionConfig& config;

  using Challenge = protocol::UtrpChallenge;

  [[nodiscard]] Challenge issue(util::Rng& rng) const {
    return server.issue_challenge(rng);
  }
  [[nodiscard]] std::vector<std::byte> encode_challenge(std::uint64_t round,
                                                        const Challenge& c) const {
    return encode(UtrpChallengeMsg{round, c});
  }
  [[nodiscard]] static bool is_challenge(MessageType type) {
    return type == MessageType::kUtrpChallenge;
  }
  [[nodiscard]] static std::pair<std::uint64_t, Challenge> decode_challenge_frame(
      std::span<const std::byte> frame) {
    UtrpChallengeMsg msg = decode_utrp_challenge(frame);
    return {msg.round, std::move(msg.challenge)};
  }
  [[nodiscard]] std::pair<bits::Bitstring, double> scan(const Challenge& c,
                                                        util::Rng& /*rng*/) const {
    for (tag::Tag& t : present) t.begin_round();
    const auto result = protocol::utrp_scan(present, hash::SlotHasher{}, c);
    const std::uint64_t occupied = result.bitstring.count();
    const double us = config.timing.utrp_scan_us(
        c.frame_size - occupied, occupied, result.reseeds);
    return {result.bitstring, us};
  }
  [[nodiscard]] protocol::Verdict verify(const Challenge& c,
                                         const bits::Bitstring& bs,
                                         double elapsed_us) const {
    const bool on_time = config.utrp_deadline_us <= 0.0 ||
                         elapsed_us <= config.utrp_deadline_us;
    const protocol::Verdict verdict = server.verify(c, bs, on_time);
    server.commit_round(c, verdict);
    return verdict;
  }
};

/// All mutable state of one session, shared by the event-queue callbacks.
/// Held by shared_ptr so late-firing timeout events cannot dangle (they
/// compare generations and become no-ops).
template <typename Adapter>
struct SessionState {
  sim::EventQueue& queue;
  Adapter adapter;
  const SessionConfig& config;
  util::Rng& rng;
  Link uplink;    // reader -> server
  Link downlink;  // server -> reader

  using Challenge = typename Adapter::Challenge;

  // --- server endpoint ----------------------------------------------------
  std::map<std::uint64_t, Challenge> issued;
  std::map<std::uint64_t, double> issued_at_us;      // first-issue timestamp
  std::map<std::uint64_t, protocol::Verdict> decided;

  // --- reader endpoint ----------------------------------------------------
  std::uint64_t total_rounds;
  std::uint64_t round = 0;
  enum class Phase { kRequesting, kScanning, kReporting, kDone, kFailed };
  Phase phase = Phase::kRequesting;
  BitstringReport pending_report;
  std::uint32_t retries = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t generation = 0;

  SessionOutcome outcome;

  SessionState(sim::EventQueue& q, Adapter a, std::uint64_t rounds,
               const SessionConfig& cfg, util::Rng& r)
      : queue(q),
        adapter(std::move(a)),
        config(cfg),
        rng(r),
        uplink(q, cfg.uplink, r),
        downlink(q, cfg.downlink, r),
        total_rounds(rounds) {}
};

template <typename Adapter>
using StatePtr = std::shared_ptr<SessionState<Adapter>>;

template <typename Adapter>
void reader_send_request(const StatePtr<Adapter>& state);
template <typename Adapter>
void reader_send_report(const StatePtr<Adapter>& state);

template <typename Adapter>
void arm_timeout(const StatePtr<Adapter>& state) {
  using Phase = typename SessionState<Adapter>::Phase;
  const std::uint64_t armed_generation = state->generation;
  state->queue.schedule_after(
      state->config.retry_timeout_us, [state, armed_generation] {
        if (state->generation != armed_generation) return;  // progressed
        if (state->retries >= state->config.max_retries) {
          state->phase = Phase::kFailed;
          ++state->generation;
          return;
        }
        ++state->retries;
        ++state->retransmissions;
        if (state->phase == Phase::kRequesting) {
          reader_send_request(state);
        } else if (state->phase == Phase::kReporting) {
          reader_send_report(state);
        }
      });
}

template <typename Adapter>
void server_on_frame(const StatePtr<Adapter>& state, std::vector<std::byte> frame);

/// Downlink delivery: the reader's half of the state machine.
template <typename Adapter>
void server_send(const StatePtr<Adapter>& state, std::vector<std::byte> frame) {
  using Phase = typename SessionState<Adapter>::Phase;
  (void)state->downlink.send(
      std::move(frame), [state](std::vector<std::byte> f) {
        const MessageType type = peek_type(f);
        if (Adapter::is_challenge(type)) {
          auto [round, challenge] = Adapter::decode_challenge_frame(f);
          if (state->phase != Phase::kRequesting || round != state->round) {
            return;  // stale duplicate
          }
          state->phase = Phase::kScanning;
          ++state->generation;
          state->retries = 0;

          auto [bitstring, scan_us] = state->adapter.scan(challenge, state->rng);
          state->pending_report = BitstringReport{
              state->config.group_name, state->round, std::move(bitstring),
              scan_us};
          state->queue.schedule_after(scan_us, [state] {
            if (state->phase != Phase::kScanning) return;
            state->phase = Phase::kReporting;
            ++state->generation;
            state->retries = 0;
            reader_send_report(state);
          });
        } else if (type == MessageType::kVerdictAck) {
          const VerdictAck ack = decode_verdict_ack(f);
          if (state->phase != Phase::kReporting || ack.round != state->round) {
            return;  // stale duplicate
          }
          ++state->outcome.rounds_completed;
          ++state->round;
          ++state->generation;
          state->retries = 0;
          if (state->round >= state->total_rounds) {
            state->phase = Phase::kDone;
            state->outcome.completed = true;
            state->outcome.finished_at_us = state->queue.now();
          } else {
            state->phase = Phase::kRequesting;
            reader_send_request(state);
          }
        }
      });
}

/// Uplink delivery: the server's half of the state machine.
template <typename Adapter>
void server_on_frame(const StatePtr<Adapter>& state, std::vector<std::byte> frame) {
  const MessageType type = peek_type(frame);
  if (type == MessageType::kChallengeRequest) {
    const ChallengeRequest request = decode_challenge_request(frame);
    // Idempotent issue: one challenge per round, replayed for duplicates;
    // the deadline clock starts at FIRST issue.
    auto [it, inserted] = state->issued.try_emplace(request.round);
    if (inserted) {
      it->second = state->adapter.issue(state->rng);
      state->issued_at_us[request.round] = state->queue.now();
    }
    server_send(state, state->adapter.encode_challenge(request.round, it->second));
  } else if (type == MessageType::kBitstringReport) {
    const BitstringReport report = decode_bitstring_report(frame);
    const auto issued_it = state->issued.find(report.round);
    if (issued_it == state->issued.end()) return;  // report for unknown round
    auto [it, inserted] = state->decided.try_emplace(report.round);
    if (inserted) {
      const double elapsed =
          state->queue.now() - state->issued_at_us[report.round];
      it->second =
          state->adapter.verify(issued_it->second, report.bitstring, elapsed);
      state->outcome.verdicts.push_back(it->second);
    }
    server_send(state, encode(VerdictAck{report.round, it->second.intact}));
  }
}

template <typename Adapter>
void reader_send(const StatePtr<Adapter>& state, std::vector<std::byte> frame) {
  (void)state->uplink.send(std::move(frame), [state](std::vector<std::byte> f) {
    server_on_frame(state, std::move(f));
  });
  arm_timeout(state);
}

template <typename Adapter>
void reader_send_request(const StatePtr<Adapter>& state) {
  reader_send(state,
              encode(ChallengeRequest{state->config.group_name, state->round}));
}

template <typename Adapter>
void reader_send_report(const StatePtr<Adapter>& state) {
  reader_send(state, encode(state->pending_report));
}

template <typename Adapter>
SessionOutcome run_session(sim::EventQueue& queue, Adapter adapter,
                           std::uint64_t rounds, const SessionConfig& config,
                           util::Rng& rng) {
  RFID_EXPECT(rounds >= 1, "need at least one round");
  auto state = std::make_shared<SessionState<Adapter>>(
      queue, std::move(adapter), rounds, config, rng);
  reader_send_request(state);
  (void)queue.run();

  state->outcome.frames_sent =
      state->uplink.frames_sent() + state->downlink.frames_sent();
  state->outcome.frames_dropped =
      state->uplink.frames_dropped() + state->downlink.frames_dropped();
  state->outcome.retransmissions = state->retransmissions;
  if (!state->outcome.completed) state->outcome.finished_at_us = queue.now();
  return state->outcome;
}

}  // namespace

SessionOutcome run_trp_session(sim::EventQueue& queue,
                               const protocol::TrpServer& server,
                               std::span<const tag::Tag> present,
                               std::uint64_t rounds,
                               const SessionConfig& config, util::Rng& rng) {
  return run_session(queue, TrpAdapter{server, present, config}, rounds, config,
                     rng);
}

SessionOutcome run_utrp_session(sim::EventQueue& queue,
                                protocol::UtrpServer& server,
                                std::span<tag::Tag> present,
                                std::uint64_t rounds,
                                const SessionConfig& config, util::Rng& rng) {
  return run_session(queue, UtrpAdapter{server, present, config}, rounds,
                     config, rng);
}

}  // namespace rfid::wire
