// Tests for the extra ID-collection baselines: query-tree walking and the
// EPC C1G2 Q algorithm.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "protocol/collect_all.h"
#include "protocol/q_protocol.h"
#include "protocol/tree_walk.h"
#include "tag/tag_set.h"
#include "util/random.h"
#include "util/stats.h"

namespace {

using rfid::protocol::QProtocolConfig;
using rfid::protocol::run_collect_all;
using rfid::protocol::run_q_protocol;
using rfid::protocol::run_tree_walk;
using rfid::tag::TagSet;

// ------------------------------------------------------------- tree walk --

TEST(TreeWalk, CollectsEveryone) {
  rfid::util::Rng rng(1);
  const TagSet set = TagSet::make_random(500, rng);
  const auto result = run_tree_walk(set.tags(), 500);
  EXPECT_EQ(result.collected, 500u);
  EXPECT_EQ(result.singleton_queries, 500u);
  EXPECT_EQ(result.total_queries, result.empty_queries +
                                      result.singleton_queries +
                                      result.collision_queries);
}

TEST(TreeWalk, QueryCountNearTheory) {
  // For n uniform IDs, the query tree protocol needs about 2.885n + O(1)
  // queries in total (classic QT analysis).
  rfid::util::Rng rng(2);
  rfid::util::RunningStat queries;
  for (int t = 0; t < 10; ++t) {
    const TagSet set = TagSet::make_random(1000, rng);
    queries.add(static_cast<double>(run_tree_walk(set.tags(), 1000).total_queries));
  }
  EXPECT_NEAR(queries.mean(), 2.885 * 1000, 250.0);
}

TEST(TreeWalk, BinaryTreeStructureInvariant) {
  // Internal (collision) nodes of a binary tree with L leaves that each
  // produce two children: collisions = singletons + empties − 1.
  rfid::util::Rng rng(3);
  const TagSet set = TagSet::make_random(300, rng);
  const auto r = run_tree_walk(set.tags(), 300);
  EXPECT_EQ(r.collision_queries + 1, r.singleton_queries + r.empty_queries);
}

TEST(TreeWalk, EarlyStopSavesQueries) {
  rfid::util::Rng rng(4);
  const TagSet set = TagSet::make_random(400, rng);
  const auto full = run_tree_walk(set.tags(), 400);
  const auto partial = run_tree_walk(set.tags(), 200);
  EXPECT_LT(partial.total_queries, full.total_queries);
  EXPECT_EQ(partial.collected, 200u);
}

TEST(TreeWalk, DepthIsLogarithmicForUniformIds) {
  rfid::util::Rng rng(5);
  const TagSet set = TagSet::make_random(1024, rng);
  const auto r = run_tree_walk(set.tags(), 1024);
  EXPECT_GE(r.max_depth, 10u);   // must at least distinguish 2^10 tags
  EXPECT_LE(r.max_depth, 40u);   // uniform 64-bit words: ~log2(n)+O(loglog)
}

TEST(TreeWalk, EdgeCases) {
  rfid::util::Rng rng(6);
  const TagSet one = TagSet::make_random(1, rng);
  const auto r1 = run_tree_walk(one.tags(), 1);
  EXPECT_EQ(r1.total_queries, 1u);
  EXPECT_EQ(r1.collected, 1u);
  EXPECT_EQ(r1.max_depth, 0u);

  const auto r0 = run_tree_walk(one.tags(), 0);
  EXPECT_EQ(r0.total_queries, 0u);

  const TagSet five = TagSet::make_random(5, rng);
  EXPECT_THROW((void)run_tree_walk(five.tags(), 6), std::invalid_argument);
}

TEST(TreeWalk, WorseThanDynamicAlohaForUniformIds) {
  // The reason the paper's collect-all baseline is framed-ALOHA: QT costs
  // ~2.885n vs ~e*n, and every QT query carries a prefix too.
  rfid::util::Rng rng(7);
  const TagSet set = TagSet::make_random(800, rng);
  const rfid::hash::SlotHasher hasher;
  rfid::util::RunningStat aloha;
  for (int t = 0; t < 10; ++t) {
    aloha.add(static_cast<double>(
        run_collect_all(set.tags(), hasher, {.stop_after_collected = 800}, rng)
            .total_slots));
  }
  const auto tree = run_tree_walk(set.tags(), 800);
  EXPECT_GT(static_cast<double>(tree.total_queries), aloha.mean());
}

// ------------------------------------------------------------ Q protocol --

TEST(QProtocol, CollectsEveryone) {
  rfid::util::Rng rng(8);
  const TagSet set = TagSet::make_random(300, rng);
  const auto result =
      run_q_protocol(set.tags(), {.stop_after_collected = 300}, rng);
  EXPECT_EQ(result.collected, 300u);
  EXPECT_EQ(result.singleton_slots, 300u);
  EXPECT_GT(result.total_slots, 300u);
}

TEST(QProtocol, SlotAccountingConsistent) {
  rfid::util::Rng rng(9);
  const TagSet set = TagSet::make_random(200, rng);
  const auto r = run_q_protocol(set.tags(), {.stop_after_collected = 200}, rng);
  // Every slot is empty, singleton, collision, or an adjust broadcast.
  EXPECT_EQ(r.total_slots,
            r.empty_slots + r.singleton_slots + r.collision_slots +
                r.query_adjusts);
}

TEST(QProtocol, AdaptsQTowardPopulation) {
  // Starting from the spec default Q=4 (16 slots) with 2000 tags, the
  // algorithm must climb; final Q ends in a sane range.
  rfid::util::Rng rng(10);
  const TagSet set = TagSet::make_random(2000, rng);
  const auto r = run_q_protocol(set.tags(), {.stop_after_collected = 2000}, rng);
  EXPECT_EQ(r.collected, 2000u);
  EXPECT_GT(r.query_adjusts, 1u);
}

TEST(QProtocol, CostWithinSmallFactorOfOptimalAloha) {
  // Q's adaptive overhead over Lee-style perfect sizing is known to be
  // modest (tens of percent, not multiples).
  rfid::util::Rng rng(11);
  const TagSet set = TagSet::make_random(1000, rng);
  const rfid::hash::SlotHasher hasher;
  rfid::util::RunningStat q_cost;
  rfid::util::RunningStat aloha_cost;
  for (int t = 0; t < 10; ++t) {
    q_cost.add(static_cast<double>(
        run_q_protocol(set.tags(), {.stop_after_collected = 1000}, rng)
            .total_slots));
    aloha_cost.add(static_cast<double>(
        run_collect_all(set.tags(), hasher, {.stop_after_collected = 1000}, rng)
            .total_slots));
  }
  EXPECT_LT(q_cost.mean(), aloha_cost.mean() * 2.0);
  EXPECT_GT(q_cost.mean(), aloha_cost.mean() * 0.5);
}

TEST(QProtocol, EarlyStopHonored) {
  rfid::util::Rng rng(12);
  const TagSet set = TagSet::make_random(500, rng);
  const auto r = run_q_protocol(set.tags(), {.stop_after_collected = 100}, rng);
  EXPECT_EQ(r.collected, 100u);
}

TEST(QProtocol, ZeroTargetDoesNothing) {
  rfid::util::Rng rng(13);
  const TagSet set = TagSet::make_random(10, rng);
  const auto r = run_q_protocol(set.tags(), {.stop_after_collected = 0}, rng);
  EXPECT_EQ(r.total_slots, 0u);
}

TEST(QProtocol, RejectsBadConfig) {
  rfid::util::Rng rng(14);
  const TagSet set = TagSet::make_random(10, rng);
  EXPECT_THROW(
      (void)run_q_protocol(set.tags(), {.stop_after_collected = 11}, rng),
      std::invalid_argument);
  EXPECT_THROW((void)run_q_protocol(
                   set.tags(),
                   {.initial_q = 4.0, .step_c = 0.0, .stop_after_collected = 5},
                   rng),
               std::invalid_argument);
  EXPECT_THROW((void)run_q_protocol(
                   set.tags(),
                   {.initial_q = 16.0, .step_c = 0.3, .stop_after_collected = 5},
                   rng),
               std::invalid_argument);
}

TEST(QProtocol, SingleTagFastPath) {
  rfid::util::Rng rng(15);
  const TagSet set = TagSet::make_random(1, rng);
  const auto r = run_q_protocol(
      set.tags(), {.initial_q = 0.0, .step_c = 0.3, .stop_after_collected = 1},
      rng);
  EXPECT_EQ(r.collected, 1u);
  EXPECT_LE(r.total_slots, 3u);
}

}  // namespace
