// Multi-round TRP: amplification of the detection guarantee (extension).
//
// Eq. (2) sizes ONE frame so that g(n, m+1, f) > α. For strict policies
// (small m, high α) that single frame explodes — catching one missing tag
// among 1000 with α = 0.99 needs ~10^5 slots, because the frame must be
// nearly empty for the lone missing tag to expose a hole.
//
// Rounds compose: k independent frames with fresh randomness miss only if
// every round misses, so per-round confidence can drop to
//     α_k = 1 − (1 − α)^{1/k}
// and each frame shrinks super-linearly while the product guarantee still
// exceeds α. The total cost k · f(α_k) typically has an interior optimum in
// k (one round is optimal for loose policies; strict policies gain 3–6×).
// plan_multi_round_trp() evaluates one k; optimize_round_count() scans for
// the cheapest k. MultiRoundTrpServer is the runtime: it issues k challenges
// and flags the set unless every round verifies.
//
// Independence caveat: rounds use fresh (f, r), so a *missing* tag's slot is
// re-randomized each round and misses are independent across rounds exactly
// as Theorem 1 assumes for one round. (tests/multi_round_test.cpp checks the
// amplified guarantee empirically.)
#pragma once

#include <cstdint>
#include <vector>

#include "bitstring/bitstring.h"
#include "math/frame_optimizer.h"
#include "protocol/trp.h"

namespace rfid::protocol {

struct MultiRoundPlan {
  std::uint32_t rounds = 1;
  std::uint32_t frame_size = 0;        // per round
  double per_round_alpha = 0.0;        // α_k
  double per_round_detection = 0.0;    // g at (n, m+1, frame_size)
  double predicted_detection = 0.0;    // 1 − (1 − g)^k
  std::uint64_t total_slots = 0;       // rounds · frame_size
};

/// Sizes a k-round campaign meeting overall confidence `alpha`.
/// Requires k >= 1; other preconditions as optimize_trp_frame.
[[nodiscard]] MultiRoundPlan plan_multi_round_trp(
    std::uint64_t n, std::uint64_t m, double alpha, std::uint32_t rounds,
    math::EmptySlotModel model = math::EmptySlotModel::kPoissonApprox);

/// Scans k = 1..max_rounds and returns the plan with the fewest total slots
/// (ties break toward fewer rounds — fewer reader passes).
[[nodiscard]] MultiRoundPlan optimize_round_count(
    std::uint64_t n, std::uint64_t m, double alpha, std::uint32_t max_rounds = 16,
    math::EmptySlotModel model = math::EmptySlotModel::kPoissonApprox);

/// Runtime driver: a TRP server whose verdict spans k rounds.
class MultiRoundTrpServer {
 public:
  MultiRoundTrpServer(std::vector<tag::TagId> ids, MonitoringPolicy policy,
                      std::uint32_t rounds,
                      hash::SlotHasher hasher = hash::SlotHasher{});

  [[nodiscard]] const MultiRoundPlan& plan() const noexcept { return plan_; }

  /// One challenge per round, all with fresh randomness.
  [[nodiscard]] std::vector<TrpChallenge> issue_challenges(util::Rng& rng) const;

  /// Intact only if every round's bitstring matches. The verdict's mismatch
  /// fields describe the first failing round.
  [[nodiscard]] Verdict verify(const std::vector<TrpChallenge>& challenges,
                               const std::vector<bits::Bitstring>& reported) const;

  /// Attaches an observability registry: forwards to the inner TRP server
  /// (per-round counters) and records one campaigns_total{outcome} increment
  /// per verify(). Pass nullptr to detach.
  void set_metrics(obs::MetricsRegistry* registry);

  /// Bulk execution mode (default on); forwards to the inner TRP server so
  /// every round's expected bitstring uses the columnar kernel.
  void set_bulk_mode(bool on) noexcept { single_.set_bulk_mode(on); }
  [[nodiscard]] bool bulk_mode() const noexcept { return single_.bulk_mode(); }

 private:
  TrpServer single_;  // owns ids/hasher; reused for per-round verification
  MultiRoundPlan plan_;
  obs::Counter* campaigns_intact_ = nullptr;
  obs::Counter* campaigns_mismatch_ = nullptr;
};

}  // namespace rfid::protocol
