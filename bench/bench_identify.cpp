// Identification cost: detecting that tags are missing is O(f) slots; this
// bench measures what it costs to learn WHICH tags are missing (the
// extension protocol in protocol/identify.h) as the theft size and frame
// load vary — rounds, total slots, wall-clock — against collecting every ID
// (which identifies the missing by elimination but broadcasts every ID).
//
// Honest finding: at these parameters the bitstring identifier spends MORE
// air time than collect-all (cost_ratio < 1): each round re-frames the whole
// surviving population, and ~e^{-1} resolution per round costs ~n·log n
// short slots versus collect-all's ~e·n ID slots. Its value is privacy — no
// tag ID is ever transmitted, matching the paper's threat model — not speed;
// the follow-up literature earns speed with filtering tricks out of scope
// here.
#include <cstdint>

#include "bench_common.h"
#include "protocol/collect_all.h"
#include "protocol/identify.h"
#include "radio/timing.h"
#include "sim/trial_runner.h"
#include "tag/tag_set.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace rfid;
  const auto opt = bench::parse_figure_options(argc, argv);
  const sim::TrialRunner runner(opt.threads);
  const hash::SlotHasher hasher;
  const radio::TimingModel timing;

  constexpr std::uint64_t kTags = 1000;
  bench::banner("Identification: which tags are missing? n = " +
                std::to_string(kTags) + " (" + std::to_string(opt.trials) +
                " trials/point)");

  util::Table table({"stolen", "frame_load", "rounds", "slots",
                     "identify_ms", "collect_all_ms", "cost_ratio"});
  for (const std::uint64_t stolen : {1u, 10u, 50u, 200u, 500u}) {
    for (const double load : {1.0, 2.0}) {
      const auto slot_stats = runner.run_metric(
          opt.trials,
          util::derive_seed(opt.seed, stolen, static_cast<std::uint64_t>(load)),
          [&](std::uint64_t, util::Rng& rng) {
            tag::TagSet set = tag::TagSet::make_random(kTags, rng);
            const auto enrolled = set.ids();
            (void)set.steal_random(stolen, rng);
            return static_cast<double>(
                protocol::identify_missing_tags(enrolled, set.tags(), hasher,
                                                {.frame_load = load}, rng)
                    .total_slots);
          });
      // Round count and the collect-all comparison from one representative
      // campaign (low variance; the slot column carries the averaged cost).
      util::Rng rng(util::derive_seed(opt.seed, stolen, 99));
      tag::TagSet set = tag::TagSet::make_random(kTags, rng);
      const auto enrolled = set.ids();
      (void)set.steal_random(stolen, rng);
      const auto one = protocol::identify_missing_tags(
          enrolled, set.tags(), hasher, {.frame_load = load}, rng);
      const auto collect = protocol::run_collect_all(
          set.tags(), hasher, {.stop_after_collected = set.size()}, rng);

      const double mean_slots = slot_stats.mean();
      // Identification slots are short-reply slots plus per-round query
      // broadcasts; collect-all carries IDs.
      const double id_ms =
          (static_cast<double>(one.rounds) * timing.query_broadcast_us +
           mean_slots * timing.short_reply_slot_us) /
          1000.0;
      const double coll_ms = collect.elapsed_us(timing) / 1000.0;

      table.begin_row();
      table.add_cell(static_cast<long long>(stolen));
      table.add_cell(load, 1);
      table.add_cell(static_cast<long long>(one.rounds));
      table.add_cell(mean_slots, 1);
      table.add_cell(id_ms, 1);
      table.add_cell(coll_ms, 1);
      table.add_cell(coll_ms / id_ms, 2);
    }
  }
  bench::emit(table, opt);
  return 0;
}
