// Ablation — reader fusion: detection through an adversarial reader.
//
// The paper's guarantee assumes the reader faithfully reports what it
// hears. One compromised reader voids that: it forges the expected
// bitstring of the full enrolled set and a k = 1 deployment verifies a
// robbed zone "intact" with probability 1. This bench sweeps the fusion
// degree k (one zone, one forged reader, Gilbert-Elliott burst loss on the
// backhaul) and reports, per k:
//   * detection_rate — robbed zone (theft > m) flagged violated. The claim
//     under test: k >= 3 meets the alpha target the paper promises while
//     k = 1 detects nothing (the forger IS the evidence channel).
//   * suspect_rate   — runs whose persistently-outvoted forger ends flagged
//     suspect (the trust tier naming the compromised reader).
//   * degraded_rate  — runs with at least one round committed below the
//     q-of-k quorum (burst loss knocking readers out mid-round).
//   * mean_slots     — fused slots put through the vote: the evidence-side
//     cost of redundancy (k sessions hear the same frames; the per-zone
//     frame plan itself is sized by math/fused_detection).
#include <cstdint>
#include <string>
#include <utility>

#include "bench_common.h"
#include "fault/fault.h"
#include "fleet/fleet.h"
#include "server/group_planner.h"
#include "sim/trial_runner.h"
#include "tag/tag_set.h"
#include "util/table.h"

namespace {

using namespace rfid;

constexpr std::uint64_t kTags = 60;
constexpr std::uint64_t kTolerance = 2;
constexpr std::uint64_t kStolen = 8;  // well beyond m: must be detected
constexpr std::uint64_t kRounds = 2;

fleet::FleetResult run_one(util::Rng& rng, std::uint64_t fleet_seed,
                           std::uint32_t k, bool steal) {
  fleet::FleetOrchestrator orchestrator(
      {.seed = fleet_seed, .threads = 1, .fleet_name = "ablation"});

  fleet::InventorySpec spec;
  spec.name = "zone";
  spec.tags = tag::TagSet::make_random(kTags, rng);
  spec.plan = server::plan_groups({.total_tags = kTags,
                                   .total_tolerance = kTolerance,
                                   .alpha = 0.95,
                                   .max_group_size = 0});
  spec.rounds = kRounds;
  spec.fusion.readers = k;
  // The sizing-side faulty budget needs the quorum to outvote it
  // (quorum > 2a); only k = 5's majority quorum of 3 affords a = 1.
  spec.fusion.assumed_faulty = k >= 5 ? 1 : 0;
  spec.fusion.slot_loss = 0.005;
  if (steal) {
    for (std::uint64_t t = 0; t < kStolen; ++t) spec.stolen.push_back(t);
  }
  // The last reader is compromised: it forges "every enrolled tag present".
  spec.dishonest_readers.emplace_back(0, k - 1);
  // Correlated burst loss on the backhaul — mean burst 4 frames, ~9%
  // stationary loss, hitting every reader's link in lockstep (the shared
  // RF environment, the worst case for quorum).
  spec.zone_faults.emplace_back(
      0, fault::parse_multi_reader_fault_plan(
             "correlated\nburst 0.025 0.25 1.0 0.0\n"));
  orchestrator.submit(std::move(spec));
  return orchestrator.run();
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_figure_options(argc, argv);
  const sim::TrialRunner runner(opt.threads);

  bench::banner(
      "Ablation: fusion degree k vs one adversarial reader (TRP, n = " +
      std::to_string(kTags) + ", m = " + std::to_string(kTolerance) +
      ", stolen = " + std::to_string(kStolen) + ", GE burst loss, " +
      std::to_string(opt.trials) + " trials/point)");

  util::Table table({"k", "detection_rate", "suspect_rate", "degraded_rate",
                     "mean_slots"});
  std::uint64_t point = 0;
  for (const std::uint32_t k : {1u, 2u, 3u, 5u}) {
    ++point;
    const std::uint64_t seed = util::derive_seed(opt.seed, point);
    const auto detection = runner.run_boolean(
        opt.trials, util::derive_seed(seed, 1),
        [&](std::uint64_t trial, util::Rng& rng) {
          return run_one(rng, util::derive_seed(seed, 1, trial), k,
                         /*steal=*/true)
                     .verdict == fleet::GlobalVerdict::kViolated;
        });
    const auto suspects = runner.run_boolean(
        opt.trials, util::derive_seed(seed, 2),
        [&](std::uint64_t trial, util::Rng& rng) {
          return run_one(rng, util::derive_seed(seed, 2, trial), k,
                         /*steal=*/true)
                     .readers_suspected > 0;
        });
    const auto degraded = runner.run_boolean(
        opt.trials, util::derive_seed(seed, 3),
        [&](std::uint64_t trial, util::Rng& rng) {
          return run_one(rng, util::derive_seed(seed, 3, trial), k,
                         /*steal=*/false)
                     .degraded_zones > 0;
        });
    const auto slots = runner.run_metric(
        opt.trials, util::derive_seed(seed, 4),
        [&](std::uint64_t trial, util::Rng& rng) {
          const fleet::FleetResult result = run_one(
              rng, util::derive_seed(seed, 4, trial), k, /*steal=*/false);
          std::uint64_t fused = 0;
          for (const fleet::ZoneReport& zone :
               result.inventories.at(0).zones) {
            fused += zone.fused_slots;
          }
          return static_cast<double>(fused);
        });
    table.begin_row();
    table.add_cell(std::to_string(k));
    table.add_cell(detection.proportion(), 4);
    table.add_cell(suspects.proportion(), 4);
    table.add_cell(degraded.proportion(), 4);
    table.add_cell(slots.mean(), 1);
  }
  bench::emit(table, opt);

  std::cout
      << "k = 1 trusts the forged bitstring outright: detection is 0 no\n"
         "matter how large the theft. From k = 2 the honest side (ties fuse\n"
         "empty) overrules the forger, detection clears alpha, and the trust\n"
         "tier names the compromised reader — but k = 2's 2-of-2 vote turns\n"
         "any single lost reply into a false empty, so the generalized\n"
         "Theorem 1 inflates the frame ~26x to keep the alarm budget. k = 3\n"
         "is the knee: one reader can be lost (or lie) per slot with eps ~\n"
         "p^2, frames shrink back to the k = 1 scale, and the correlated\n"
         "burst never drives committed rounds below quorum (retransmission\n"
         "absorbs it; degraded_rate stays 0 at these loss rates).\n";
  return 0;
}
