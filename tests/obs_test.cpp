// Deterministic battery for the observability subsystem: registry and
// family semantics, histogram bucket/quantile properties on randomized
// inputs, exposition rendering and escaping, tracer span trees on a manual
// clock, the session-summary ring, and the end-to-end wiring — a TRP round
// with known (n, f, r) must land exactly the expected counter deltas, and a
// full wire session must agree with its own SessionOutcome. The
// multi-threaded hammer lives in obs_concurrency_test.cpp; byte-exact
// exposition of a seeded scenario in obs_golden_test.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "fleet/fleet.h"
#include "obs/catalog.h"
#include "obs/expose.h"
#include "obs/metrics.h"
#include "obs/session_log.h"
#include "obs/trace.h"
#include "protocol/multi_round.h"
#include "service/client.h"
#include "service/service.h"
#include "protocol/trp.h"
#include "protocol/utrp.h"
#include "server/group_planner.h"
#include "server/inventory_server.h"
#include "sim/event_queue.h"
#include "storage/backend.h"
#include "storage/durable_server.h"
#include "tag/tag_set.h"
#include "util/random.h"
#include "wire/session.h"

namespace {

using namespace rfid;
namespace cat = obs::catalog;

// ------------------------------------------------------------- counters --

TEST(ObsCounter, StartsAtZeroAndAccumulates) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(ObsGauge, SetAndAdd) {
  obs::Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

// ------------------------------------------------------------- registry --

TEST(ObsRegistry, ReregistrationIsIdempotent) {
  obs::MetricsRegistry reg;
  auto& a = reg.counter_family("x_total", "Help.", {"k"});
  auto& b = reg.counter_family("x_total", "Help.", {"k"});
  EXPECT_EQ(&a, &b);
  a.with({"v"}).inc();
  EXPECT_EQ(b.with({"v"}).value(), 1u);
}

TEST(ObsRegistry, ConflictingLabelsRejected) {
  obs::MetricsRegistry reg;
  (void)reg.counter_family("x_total", "Help.", {"k"});
  EXPECT_THROW((void)reg.counter_family("x_total", "Help.", {"other"}),
               std::invalid_argument);
}

TEST(ObsRegistry, CrossTypeNameCollisionRejected) {
  obs::MetricsRegistry reg;
  (void)reg.counter_family("x_total", "Help.", {});
  EXPECT_THROW((void)reg.gauge_family("x_total", "Help.", {}),
               std::invalid_argument);
  EXPECT_THROW((void)reg.histogram_family("x_total", "Help.", {}, {1.0}),
               std::invalid_argument);
}

TEST(ObsRegistry, HistogramBoundsMustMatchOnReregistration) {
  obs::MetricsRegistry reg;
  (void)reg.histogram_family("h", "Help.", {}, {1.0, 2.0});
  EXPECT_NO_THROW((void)reg.histogram_family("h", "Help.", {}, {1.0, 2.0}));
  EXPECT_THROW((void)reg.histogram_family("h", "Help.", {}, {1.0, 3.0}),
               std::invalid_argument);
}

TEST(ObsRegistry, InvalidNamesRejected) {
  obs::MetricsRegistry reg;
  EXPECT_THROW((void)reg.counter("", "Help."), std::invalid_argument);
  EXPECT_THROW((void)reg.counter("0starts_with_digit", "Help."),
               std::invalid_argument);
  EXPECT_THROW((void)reg.counter("has space", "Help."), std::invalid_argument);
  EXPECT_THROW((void)reg.counter_family("ok_total", "Help.", {"bad:label"}),
               std::invalid_argument);
  EXPECT_NO_THROW((void)reg.counter("ns:ok_total", "Help."));
}

TEST(ObsRegistry, LabelCardinalityEnforced) {
  obs::MetricsRegistry reg;
  auto& family = reg.counter_family("x_total", "Help.", {"a", "b"});
  EXPECT_THROW((void)family.with({"only-one"}), std::invalid_argument);
  EXPECT_NO_THROW((void)family.with({"one", "two"}));
}

TEST(ObsRegistry, SeriesReferencesAreStable) {
  // Map nodes must never move: resolve one series, create many more, and
  // the original reference must still be the live series.
  obs::MetricsRegistry reg;
  auto& family = reg.counter_family("x_total", "Help.", {"k"});
  obs::Counter& first = family.with({"v0"});
  first.inc();
  for (int i = 1; i < 200; ++i) {
    // std::string + append, not "v" + to_string(...): the const char* +
    // string&& overload trips a GCC 12 -Wrestrict false positive at -O2.
    std::string label("v");
    label += std::to_string(i);
    family.with({label}).inc(2);
  }
  EXPECT_EQ(first.value(), 1u);
  EXPECT_EQ(&first, &family.with({"v0"}));
}

// ------------------------------------------------------------ histogram --

TEST(ObsHistogram, BucketAssignmentIsInclusiveUpperBound) {
  obs::Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);   // bucket 0
  h.observe(1.0);   // bucket 0 (inclusive ceiling)
  h.observe(1.5);   // bucket 1
  h.observe(4.0);   // bucket 2
  h.observe(100.0); // overflow
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 4.0 + 100.0);
}

TEST(ObsHistogram, RejectsUnsortedOrEmptyBounds) {
  EXPECT_THROW(obs::Histogram({}), std::invalid_argument);
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(obs::Histogram({1.0, 1.0}), std::invalid_argument);
}

TEST(ObsHistogram, ExponentialBounds) {
  const auto bounds = obs::Histogram::exponential_bounds(16.0, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 16.0);
  EXPECT_DOUBLE_EQ(bounds[1], 32.0);
  EXPECT_DOUBLE_EQ(bounds[2], 64.0);
  EXPECT_DOUBLE_EQ(bounds[3], 128.0);
}

TEST(ObsHistogram, HdrBoundsAreLogLinearWithBoundedRelativeWidth) {
  constexpr unsigned kSub = 16;
  const auto bounds = obs::Histogram::hdr_bounds(10.0, 1e5, kSub);
  ASSERT_GE(bounds.size(), 2u);
  // Bucket 0 covers values up to min + min/sub, so estimates for values at
  // min_value itself stay within the relative-error bound.
  EXPECT_DOUBLE_EQ(bounds.front(), 10.0 * (1.0 + 1.0 / kSub));
  EXPECT_GE(bounds.back(), 1e5);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    ASSERT_LT(bounds[i - 1], bounds[i]);
    // Bucket width <= lower_edge / sub — the invariant behind the quantile
    // error bound.
    EXPECT_LE(bounds[i] - bounds[i - 1],
              bounds[i - 1] / kSub * (1.0 + 1e-12));
  }
}

TEST(ObsHistogram, EmptyAndOverflowQuantiles) {
  obs::Histogram h({1.0, 2.0});
  EXPECT_EQ(h.quantile(0.5), 0.0);  // empty
  h.observe(10.0);                  // only the overflow bucket
  EXPECT_TRUE(std::isinf(h.quantile(0.99)));
}

TEST(ObsHistogram, QuantileRelativeErrorBoundedOnRandomizedInputs) {
  // Property: for HDR bounds with `sub` sub-buckets per octave, quantile
  // estimates on values inside [min, max) carry relative error <= 1/sub.
  constexpr unsigned kSub = 32;
  constexpr double kMin = 1.0;
  constexpr double kMax = 1e6;
  for (const std::uint64_t seed : {11ULL, 12ULL, 13ULL}) {
    util::Rng rng(seed);
    obs::Histogram h(obs::Histogram::hdr_bounds(kMin, kMax, kSub));
    std::vector<double> values;
    constexpr int kN = 20000;
    values.reserve(kN);
    for (int i = 0; i < kN; ++i) {
      // Log-uniform spread, so every octave sees traffic.
      const double v = kMin * std::pow(kMax / kMin, rng.uniform()) * 0.999;
      values.push_back(v);
      h.observe(v);
    }
    std::sort(values.begin(), values.end());
    for (const double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
      const auto rank = static_cast<std::size_t>(std::max(
          1.0, std::ceil(q * static_cast<double>(values.size()))));
      const double exact = values[rank - 1];
      const double estimate = h.quantile(q);
      EXPECT_NEAR(estimate, exact, exact / kSub + 1e-9)
          << "seed=" << seed << " q=" << q;
    }
  }
}

// ----------------------------------------------------------- exposition --

TEST(ObsExpose, FormatDoubleShortestRoundTrip) {
  EXPECT_EQ(obs::format_double(13.0), "13");
  EXPECT_EQ(obs::format_double(0.25), "0.25");
  EXPECT_EQ(obs::format_double(std::numeric_limits<double>::infinity()),
            "+Inf");
  EXPECT_EQ(obs::format_double(-std::numeric_limits<double>::infinity()),
            "-Inf");
  EXPECT_EQ(obs::format_double(std::nan("")), "NaN");
}

TEST(ObsExpose, PrometheusRenderingIsExact) {
  obs::MetricsRegistry reg;
  reg.counter_family("t_requests_total", "Requests.", {"method"})
      .with({"get"})
      .inc(3);
  reg.gauge("t_temp", "Temp.").set(1.5);
  obs::Histogram& h = reg.histogram("t_lat", "Latency.", {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(5.0);

  const std::string expected =
      "# HELP t_lat Latency.\n"
      "# TYPE t_lat histogram\n"
      "t_lat_bucket{le=\"1\"} 1\n"
      "t_lat_bucket{le=\"2\"} 2\n"
      "t_lat_bucket{le=\"+Inf\"} 3\n"
      "t_lat_sum 7\n"
      "t_lat_count 3\n"
      "# HELP t_requests_total Requests.\n"
      "# TYPE t_requests_total counter\n"
      "t_requests_total{method=\"get\"} 3\n"
      "# HELP t_temp Temp.\n"
      "# TYPE t_temp gauge\n"
      "t_temp 1.5\n";
  EXPECT_EQ(obs::render_prometheus(reg.snapshot()), expected);
}

TEST(ObsExpose, PrometheusEscapesLabelValues) {
  obs::MetricsRegistry reg;
  reg.counter_family("t_total", "Help.", {"k"})
      .with({"a\\b\"c\nd"})
      .inc();
  const std::string out = obs::render_prometheus(reg.snapshot());
  EXPECT_NE(out.find("t_total{k=\"a\\\\b\\\"c\\nd\"} 1\n"), std::string::npos);
}

TEST(ObsExpose, SeriesSortedByLabelValues) {
  obs::MetricsRegistry reg;
  auto& family = reg.counter_family("t_total", "Help.", {"k"});
  family.with({"zebra"}).inc();
  family.with({"alpha"}).inc();
  const std::string out = obs::render_prometheus(reg.snapshot());
  EXPECT_LT(out.find("alpha"), out.find("zebra"));
}

TEST(ObsExpose, JsonCarriesAllKindsAndSessions) {
  obs::MetricsRegistry reg;
  reg.counter("t_c_total", "C.").inc(2);
  reg.gauge("t_g", "G.").set(0.5);
  reg.histogram("t_h", "H.", {1.0}).observe(3.0);
  obs::SessionLog log(4);
  obs::SessionSummary summary;
  summary.protocol = "trp";
  summary.group = "shelf \"a\"";
  summary.completed = true;
  summary.outcome = "completed";
  summary.rounds_completed = 2;
  log.record(summary);

  const std::string out = obs::render_json(reg.snapshot(), &log);
  EXPECT_NE(out.find("\"counters\": ["), std::string::npos);
  EXPECT_NE(out.find("{\"name\":\"t_c_total\""), std::string::npos);
  EXPECT_NE(out.find("\"value\":2}"), std::string::npos);
  EXPECT_NE(out.find("{\"name\":\"t_g\""), std::string::npos);
  EXPECT_NE(out.find("\"upperBounds\":[1]"), std::string::npos);
  EXPECT_NE(out.find("\"bucketCounts\":[0,1],\"count\":1,\"sum\":3"),
            std::string::npos);
  EXPECT_NE(out.find("\"group\":\"shelf \\\"a\\\"\""), std::string::npos);
  EXPECT_NE(out.find("\"roundsCompleted\":2"), std::string::npos);
}

// --------------------------------------------------------------- tracer --

TEST(ObsTracer, SpanTreeOnManualClock) {
  double now = 0.0;
  obs::Tracer tracer([&now] { return now; });
  const auto session = tracer.begin_span("session");
  tracer.annotate(session, "protocol", "trp");
  now = 10.0;
  const auto round = tracer.begin_span("round", session);
  now = 25.0;
  tracer.end_span(round);
  now = 30.0;
  tracer.end_span(session);

  ASSERT_EQ(tracer.spans().size(), 2u);
  const obs::Span& s = tracer.spans()[0];
  const obs::Span& r = tracer.spans()[1];
  EXPECT_EQ(s.id, 1u);
  EXPECT_EQ(s.parent, obs::Tracer::kNoSpan);
  EXPECT_DOUBLE_EQ(s.start_us, 0.0);
  EXPECT_DOUBLE_EQ(s.end_us, 30.0);
  EXPECT_EQ(r.parent, s.id);
  EXPECT_DOUBLE_EQ(r.duration_us(), 15.0);

  const std::string rendered = tracer.render();
  EXPECT_EQ(rendered,
            "session [0, 30) dur=30us protocol=trp\n"
            "  round [10, 25) dur=15us\n");
}

TEST(ObsTracer, EndSpanIsIdempotentAndNoSpanIsNoOp) {
  double now = 0.0;
  obs::Tracer tracer([&now] { return now; });
  const auto span = tracer.begin_span("x");
  now = 5.0;
  tracer.end_span(span);
  now = 50.0;
  tracer.end_span(span);  // must not move the end time
  EXPECT_DOUBLE_EQ(tracer.spans()[0].end_us, 5.0);
  tracer.end_span(obs::Tracer::kNoSpan);
  tracer.annotate(obs::Tracer::kNoSpan, "k", "v");
  EXPECT_EQ(tracer.spans().size(), 1u);
}

TEST(ObsTracer, BoundedStoreCountsDrops) {
  double now = 0.0;
  obs::Tracer tracer([&now] { return now; }, 2);
  EXPECT_NE(tracer.begin_span("a"), obs::Tracer::kNoSpan);
  EXPECT_NE(tracer.begin_span("b"), obs::Tracer::kNoSpan);
  EXPECT_EQ(tracer.begin_span("c"), obs::Tracer::kNoSpan);
  EXPECT_EQ(tracer.dropped_spans(), 1u);
  tracer.clear();
  EXPECT_NE(tracer.begin_span("d"), obs::Tracer::kNoSpan);
}

// ---------------------------------------------------------- session log --

TEST(ObsSessionLog, RingEvictsOldestFirst) {
  obs::SessionLog log(2);
  for (int i = 0; i < 3; ++i) {
    obs::SessionSummary s;
    s.group = "g" + std::to_string(i);
    log.record(s);
  }
  const auto recent = log.recent();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0].group, "g1");
  EXPECT_EQ(recent[1].group, "g2");
  EXPECT_EQ(log.total_recorded(), 3u);
}

// ------------------------------------------- protocol counter deltas ----

TEST(ObsProtocol, TrpRoundLandsExactCounterDeltas) {
  util::Rng rng(7);
  const tag::TagSet set = tag::TagSet::make_random(100, rng);
  protocol::TrpServer server(set.ids(),
                             {.tolerated_missing = 2, .confidence = 0.9});
  obs::MetricsRegistry reg;
  server.set_metrics(&reg);

  const auto challenge = server.issue_challenge(rng);
  EXPECT_EQ(challenge.frame_size, server.frame_size());
  const auto intact_report = server.expected_bitstring(challenge);
  EXPECT_TRUE(server.verify(challenge, intact_report).intact);

  EXPECT_EQ(cat::challenges_total(reg, "trp").value(), 1u);
  EXPECT_EQ(cat::rounds_total(reg, "trp", "intact").value(), 1u);
  EXPECT_EQ(cat::rounds_total(reg, "trp", "mismatch").value(), 0u);
  EXPECT_EQ(cat::slots_total(reg, "trp").value(), server.frame_size());
  EXPECT_EQ(cat::mismatched_slots_total(reg, "trp").value(), 0u);
  EXPECT_EQ(cat::frame_size(reg, "trp").count(), 1u);
  EXPECT_DOUBLE_EQ(cat::frame_size(reg, "trp").sum(),
                   static_cast<double>(server.frame_size()));

  // Flip exactly one slot: one mismatched slot, one mismatch round, and
  // another frame's worth of slots.
  bits::Bitstring tampered = intact_report;
  tampered.set(0, !tampered.test(0));
  EXPECT_FALSE(server.verify(challenge, tampered).intact);
  EXPECT_EQ(cat::rounds_total(reg, "trp", "mismatch").value(), 1u);
  EXPECT_EQ(cat::mismatched_slots_total(reg, "trp").value(), 1u);
  EXPECT_EQ(cat::slots_total(reg, "trp").value(),
            2u * static_cast<std::uint64_t>(server.frame_size()));

  // Detach: no further movement.
  server.set_metrics(nullptr);
  (void)server.verify(challenge, intact_report);
  EXPECT_EQ(cat::rounds_total(reg, "trp", "intact").value(), 1u);
}

TEST(ObsProtocol, UtrpRoundOutcomesAndMirrorReseeds) {
  util::Rng rng(8);
  const tag::TagSet set = tag::TagSet::make_random(60, rng);
  protocol::UtrpServer server(set, {.tolerated_missing = 1, .confidence = 0.9},
                              20);
  obs::MetricsRegistry reg;
  server.set_metrics(&reg);

  const auto challenge = server.issue_challenge(rng);
  const auto report = server.expected_bitstring(challenge);
  const auto verdict = server.verify(challenge, report, /*deadline_met=*/true);
  EXPECT_TRUE(verdict.intact);
  server.commit_round(challenge, verdict);

  EXPECT_EQ(cat::challenges_total(reg, "utrp").value(), 1u);
  EXPECT_EQ(cat::rounds_total(reg, "utrp", "intact").value(), 1u);
  EXPECT_EQ(cat::slots_total(reg, "utrp").value(), server.frame_size());
  // 60 replying tags in one frame force at least one re-seed on the commit
  // replay.
  EXPECT_GE(cat::reseeds_total(reg, "mirror").value(), 1u);

  // A late report counts as deadline_missed even when the bits match.
  const auto challenge2 = server.issue_challenge(rng);
  const auto report2 = server.expected_bitstring(challenge2);
  EXPECT_FALSE(server.verify(challenge2, report2, /*deadline_met=*/false).intact);
  EXPECT_EQ(cat::rounds_total(reg, "utrp", "deadline_missed").value(), 1u);
  EXPECT_EQ(cat::rounds_total(reg, "utrp", "mismatch").value(), 0u);
}

TEST(ObsProtocol, MultiRoundCampaignCounters) {
  util::Rng rng(9);
  const tag::TagSet set = tag::TagSet::make_random(80, rng);
  protocol::MultiRoundTrpServer server(
      set.ids(), {.tolerated_missing = 1, .confidence = 0.95}, 3);
  obs::MetricsRegistry reg;
  server.set_metrics(&reg);

  const auto challenges = server.issue_challenges(rng);
  ASSERT_EQ(challenges.size(), 3u);
  protocol::TrpServer reference(set.ids(),
                                {.tolerated_missing = 1,
                                 .confidence = server.plan().per_round_alpha});
  std::vector<bits::Bitstring> reports;
  for (const auto& c : challenges) {
    reports.push_back(reference.expected_bitstring(c));
  }
  EXPECT_TRUE(server.verify(challenges, reports).intact);
  EXPECT_EQ(cat::multi_round_campaigns_total(reg, "intact").value(), 1u);
  // The inner TRP server counted every round.
  EXPECT_EQ(cat::challenges_total(reg, "trp").value(), 3u);
  EXPECT_EQ(cat::rounds_total(reg, "trp", "intact").value(), 3u);
}

// --------------------------------------------------- inventory server ----

TEST(ObsServer, VerdictAlertAndResyncCounters) {
  util::Rng rng(10);
  server::InventoryServer inv;
  obs::MetricsRegistry reg;
  inv.attach_metrics(&reg);

  const tag::TagSet trp_tags = tag::TagSet::make_random(50, rng);
  tag::TagSet utrp_tags = tag::TagSet::make_random(50, rng);
  server::GroupConfig trp_cfg;
  trp_cfg.name = "shelf";
  trp_cfg.policy = {.tolerated_missing = 1, .confidence = 0.9};
  server::GroupConfig utrp_cfg = trp_cfg;
  utrp_cfg.name = "pallet";
  utrp_cfg.protocol = server::ProtocolKind::kUtrp;
  const auto trp_id = inv.enroll(trp_tags, trp_cfg);
  const auto utrp_id = inv.enroll(utrp_tags, utrp_cfg);
  EXPECT_EQ(cat::groups_enrolled_total(reg, "trp").value(), 1u);
  EXPECT_EQ(cat::groups_enrolled_total(reg, "utrp").value(), 1u);

  // Intact TRP round.
  const auto trp_challenge = inv.challenge_trp(trp_id, rng);
  const protocol::TrpServer oracle(trp_tags.ids(), trp_cfg.policy);
  (void)inv.submit_trp(trp_id, trp_challenge,
                       oracle.expected_bitstring(trp_challenge));
  EXPECT_EQ(cat::verdicts_total(reg, "trp", "intact").value(), 1u);
  EXPECT_EQ(cat::alerts_total(reg, "round_failure").value(), 0u);

  // Violated UTRP round (tampered bitstring), then the healing resync.
  const auto utrp_challenge = inv.challenge_utrp(utrp_id, rng);
  bits::Bitstring tampered(utrp_challenge.frame_size);
  (void)inv.submit_utrp(utrp_id, utrp_challenge, tampered,
                        /*deadline_met=*/true);
  EXPECT_EQ(cat::verdicts_total(reg, "utrp", "violated").value(), 1u);
  EXPECT_EQ(cat::alerts_total(reg, "round_failure").value(), 1u);
  EXPECT_TRUE(inv.needs_resync(utrp_id));
  inv.resync(utrp_id, utrp_tags);
  EXPECT_EQ(cat::resyncs_total(reg).value(), 1u);
  EXPECT_EQ(cat::alerts_total(reg, "resync").value(), 1u);
}

TEST(ObsProtocol, BulkKernelSlotCountersMoveOnlyInBulkMode) {
  util::Rng rng(11);
  const tag::TagSet set = tag::TagSet::make_random(100, rng);
  protocol::TrpServer server(set.ids(),
                             {.tolerated_missing = 2, .confidence = 0.9});
  obs::MetricsRegistry reg;
  server.set_metrics(&reg);

  const auto challenge = server.issue_challenge(rng);
  (void)server.expected_bitstring(challenge);
  EXPECT_EQ(cat::bulk_slots_total(reg, "trp_frame").value(), 100u);
  (void)server.expected_bitstring(challenge);
  EXPECT_EQ(cat::bulk_slots_total(reg, "trp_frame").value(), 200u);

  server.set_bulk_mode(false);
  (void)server.expected_bitstring(challenge);
  EXPECT_EQ(cat::bulk_slots_total(reg, "trp_frame").value(), 200u);
}

TEST(ObsServer, ExpectedCacheHitMissAndInvalidationDeltas) {
  util::Rng rng(12);
  server::InventoryServer inv;
  obs::MetricsRegistry reg;
  inv.attach_metrics(&reg);

  const tag::TagSet tags = tag::TagSet::make_random(60, rng);
  server::GroupConfig cfg;
  cfg.name = "cached";
  cfg.policy = {.tolerated_missing = 1, .confidence = 0.9};
  const auto id = inv.enroll(tags, cfg);

  const protocol::TrpReader reader;
  const auto c1 = inv.challenge_trp(id, rng);
  (void)inv.submit_trp(id, c1, reader.scan(tags.tags(), c1, rng));
  EXPECT_EQ(cat::expected_cache_total(reg, "miss").value(), 1u);
  EXPECT_EQ(cat::expected_cache_total(reg, "hit").value(), 0u);

  // Replay twice: two hits, no further misses.
  (void)inv.submit_trp(id, c1, reader.scan(tags.tags(), c1, rng));
  (void)inv.submit_trp(id, c1, reader.scan(tags.tags(), c1, rng));
  EXPECT_EQ(cat::expected_cache_total(reg, "miss").value(), 1u);
  EXPECT_EQ(cat::expected_cache_total(reg, "hit").value(), 2u);

  // A second distinct challenge misses once; re-enrollment then drops both
  // entries — the invalidation counter records exactly the entries dropped.
  const auto c2 = inv.challenge_trp(id, rng);
  (void)inv.submit_trp(id, c2, reader.scan(tags.tags(), c2, rng));
  EXPECT_EQ(cat::expected_cache_total(reg, "miss").value(), 2u);
  EXPECT_EQ(cat::expected_cache_invalidations_total(reg).value(), 0u);
  inv.re_enroll(id, tags, cfg);
  EXPECT_EQ(cat::expected_cache_invalidations_total(reg).value(), 2u);

  // Cold after invalidation: the replayed challenge misses again.
  (void)inv.submit_trp(id, c1, reader.scan(tags.tags(), c1, rng));
  EXPECT_EQ(cat::expected_cache_total(reg, "miss").value(), 3u);
  EXPECT_EQ(cat::expected_cache_total(reg, "hit").value(), 2u);
}

// --------------------------------------------------------- wire session --

TEST(ObsWire, SessionMetricsTracesAndLogAgreeWithOutcome) {
  sim::EventQueue queue;
  util::Rng rng(31);
  const tag::TagSet set = tag::TagSet::make_random(120, rng);
  protocol::TrpServer server(set.ids(),
                             {.tolerated_missing = 3, .confidence = 0.95});
  obs::MetricsRegistry reg;
  obs::Tracer tracer([&queue] { return queue.now(); });
  obs::SessionLog log;
  server.set_metrics(&reg);

  wire::SessionConfig config;
  config.metrics = &reg;
  config.tracer = &tracer;
  config.session_log = &log;
  constexpr std::uint64_t kRounds = 4;
  const auto outcome =
      wire::run_trp_session(queue, server, set.tags(), kRounds, config, rng);
  ASSERT_TRUE(outcome.completed);

  // Counters agree with the outcome the session itself reported.
  EXPECT_EQ(cat::sessions_total(reg, "trp", "completed").value(), 1u);
  EXPECT_EQ(cat::frames_sent_total(reg, "uplink").value() +
                cat::frames_sent_total(reg, "downlink").value(),
            outcome.frames_sent);
  EXPECT_EQ(cat::frames_dropped_total(reg, "uplink").value() +
                cat::frames_dropped_total(reg, "downlink").value(),
            outcome.frames_dropped);
  EXPECT_EQ(cat::retransmissions_total(reg).value(), outcome.retransmissions);
  EXPECT_GT(cat::bytes_sent_total(reg, "uplink").value(), 0u);
  // Every round's scan observed the whole frame.
  EXPECT_EQ(cat::scan_slots_total(reg, "trp", "empty").value() +
                cat::scan_slots_total(reg, "trp", "reply").value(),
            kRounds * static_cast<std::uint64_t>(server.frame_size()));
  // The protocol engine saw one challenge + verify per round.
  EXPECT_EQ(cat::challenges_total(reg, "trp").value(), kRounds);
  EXPECT_EQ(cat::rounds_total(reg, "trp", "intact").value(), kRounds);
  const obs::Histogram& duration = cat::session_duration_us(reg, "trp");
  EXPECT_EQ(duration.count(), 1u);
  EXPECT_DOUBLE_EQ(duration.sum(), outcome.finished_at_us);

  // Trace: one session span, one round + one scan span per round, all ended,
  // correctly parented.
  std::size_t sessions = 0, round_spans = 0, scan_spans = 0;
  for (const obs::Span& span : tracer.spans()) {
    EXPECT_TRUE(span.ended) << span.name;
    if (span.name == "session") {
      ++sessions;
      EXPECT_EQ(span.parent, obs::Tracer::kNoSpan);
    } else if (span.name == "round") {
      ++round_spans;
      EXPECT_EQ(span.parent, tracer.spans()[0].id);
    } else if (span.name == "scan") {
      ++scan_spans;
    }
  }
  EXPECT_EQ(sessions, 1u);
  EXPECT_EQ(round_spans, kRounds);
  EXPECT_EQ(scan_spans, kRounds);

  // Session log entry mirrors the outcome.
  const auto recent = log.recent();
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].protocol, "trp");
  EXPECT_EQ(recent[0].outcome, "completed");
  EXPECT_EQ(recent[0].rounds_completed, kRounds);
  EXPECT_EQ(recent[0].frames_sent, outcome.frames_sent);
  EXPECT_DOUBLE_EQ(recent[0].duration_us, outcome.finished_at_us);
}

// -------------------------------------------------------------- storage --

TEST(ObsStorage, JournalRotationAndRecoveryCounters) {
  storage::MemoryBackend backend;
  util::Rng rng(40);
  const tag::TagSet set = tag::TagSet::make_random(40, rng);
  server::GroupConfig cfg;
  cfg.name = "durable";
  cfg.policy = {.tolerated_missing = 1, .confidence = 0.9};

  std::uint64_t appended_bytes = 0;
  {
    obs::MetricsRegistry reg;
    double now = 0.0;
    storage::DurabilityConfig dcfg;
    dcfg.metrics = &reg;
    dcfg.clock = [&now] { return now += 5.0; };
    storage::DurableInventoryServer durable(backend, dcfg);
    // Fresh store: one clean recovery, nothing replayed.
    EXPECT_EQ(cat::recoveries_total(reg, "true").value(), 1u);
    EXPECT_EQ(cat::recovery_records_replayed_total(reg).value(), 0u);
    EXPECT_EQ(cat::recovery_duration_us(reg).count(), 1u);
    EXPECT_DOUBLE_EQ(cat::recovery_duration_us(reg).sum(), 5.0);

    const auto id = durable.enroll(set, cfg);
    const auto challenge = durable.challenge_trp(id, rng);
    const protocol::TrpServer oracle(set.ids(), cfg.policy);
    (void)durable.submit_trp(id, challenge,
                             oracle.expected_bitstring(challenge));
    EXPECT_EQ(cat::journal_appends_total(reg).value(), 2u);
    appended_bytes = cat::journal_bytes_total(reg).value();
    EXPECT_GT(appended_bytes, 0u);
    EXPECT_EQ(cat::snapshot_rotations_total(reg).value(), 0u);
    durable.rotate();
    EXPECT_EQ(cat::snapshot_rotations_total(reg).value(), 1u);
    // The post-recovery attachment also instruments the wrapped server.
    EXPECT_EQ(cat::verdicts_total(reg, "trp", "intact").value(), 1u);
  }

  // Reopen: the snapshot carries the state, so the journal chain is empty —
  // a clean recovery with zero replayed records on a fresh registry.
  {
    obs::MetricsRegistry reg;
    double now = 100.0;
    storage::DurabilityConfig dcfg;
    dcfg.metrics = &reg;
    dcfg.clock = [&now] { return now += 7.0; };
    storage::DurableInventoryServer durable(backend, dcfg);
    EXPECT_TRUE(durable.recovery_report().clean());
    EXPECT_EQ(cat::recoveries_total(reg, "true").value(), 1u);
    EXPECT_DOUBLE_EQ(cat::recovery_duration_us(reg).sum(), 7.0);
    EXPECT_EQ(durable.server().group_count(), 1u);
    // Replay did NOT inflate live server counters: the verdict series was
    // attached after recovery.
    EXPECT_EQ(cat::verdicts_total(reg, "trp", "intact").value(), 0u);
    EXPECT_EQ(cat::recovery_records_replayed_total(reg).value(), 0u);
  }
}

// --------------------------------------------------------------- fusion --

// A fused fleet's fusion_* counters must equal the sums of the per-zone
// report fields exactly — the metrics are re-recorded post-run from the
// same reports, so any drift is a bookkeeping bug, not noise.
TEST(ObsFusion, FusedFleetLandsExactCounterDeltasAndReaderJson) {
  obs::MetricsRegistry reg;
  obs::SessionLog log(64);
  fleet::FleetOrchestrator orchestrator({.seed = 515,
                                         .threads = 2,
                                         .fleet_name = "fused-obs",
                                         .metrics = &reg,
                                         .session_log = &log});
  util::Rng rng(616);
  fleet::InventorySpec spec;
  spec.name = "inv";
  spec.tags = tag::TagSet::make_random(80, rng);
  spec.plan = server::plan_groups({.total_tags = 80,
                                   .total_tolerance = 2,
                                   .alpha = 0.95,
                                   .max_group_size = 40});
  spec.rounds = 2;
  spec.fusion.readers = 3;
  for (std::uint64_t t = 0; t < 8; ++t) spec.stolen.push_back(t);
  spec.dishonest_readers.emplace_back(0, 1);  // forger inside the theft zone
  orchestrator.submit(std::move(spec));
  const fleet::FleetResult result = orchestrator.run();

  std::uint64_t fused_slots = 0;
  std::uint64_t phantom = 0;
  std::uint64_t missed = 0;
  std::uint64_t degraded = 0;
  for (const fleet::ZoneReport& zone : result.inventories.at(0).zones) {
    fused_slots += zone.fused_slots;
    phantom += zone.phantom_votes;
    missed += zone.missed_votes;
    degraded += zone.degraded_rounds;
  }
  ASSERT_GT(fused_slots, 0u);
  ASSERT_GT(phantom, 0u);  // the forger's physically impossible votes
  EXPECT_EQ(cat::fusion_slots_fused_total(reg).value(), fused_slots);
  EXPECT_EQ(cat::fusion_votes_overruled_total(reg, "phantom_busy").value(),
            phantom);
  EXPECT_EQ(cat::fusion_votes_overruled_total(reg, "missed_busy").value(),
            missed);
  EXPECT_EQ(cat::fusion_rounds_degraded_total(reg).value(), degraded);
  EXPECT_EQ(cat::fusion_readers_suspected_total(reg).value(),
            result.readers_suspected);
  EXPECT_EQ(result.readers_suspected, 1u);

  // Per-reader session entries: every (zone, reader, attempt) is logged,
  // and the JSON carries reader/readers fields for fused sessions only.
  const std::string json = obs::render_json(reg.snapshot(), &log);
  EXPECT_NE(json.find("\"reader\":0"), std::string::npos);
  EXPECT_NE(json.find("\"reader\":2"), std::string::npos);
  EXPECT_NE(json.find("\"readers\":3"), std::string::npos);
}

// The reader field is a fused-only concept: single-reader sessions must
// render byte-identically to the pre-fusion format (no reader/readers
// keys), so dashboards built on the k = 1 schema never see a new field.
TEST(ObsFusion, SingleReaderSessionsCarryNoReaderJsonField) {
  obs::MetricsRegistry reg;
  obs::SessionLog log(64);
  fleet::FleetOrchestrator orchestrator({.seed = 515,
                                         .threads = 1,
                                         .fleet_name = "plain-obs",
                                         .metrics = &reg,
                                         .session_log = &log});
  util::Rng rng(616);
  fleet::InventorySpec spec;
  spec.name = "inv";
  spec.tags = tag::TagSet::make_random(40, rng);
  spec.plan = server::plan_groups({.total_tags = 40,
                                   .total_tolerance = 1,
                                   .alpha = 0.95,
                                   .max_group_size = 0});
  spec.rounds = 1;
  orchestrator.submit(std::move(spec));
  (void)orchestrator.run();

  const std::string json = obs::render_json(reg.snapshot(), &log);
  EXPECT_EQ(json.find("\"reader\":"), std::string::npos);
  EXPECT_EQ(json.find("\"readers\":"), std::string::npos);
  // And none of the fusion counters were ever registered.
  const std::string prometheus = obs::render_prometheus(reg.snapshot());
  EXPECT_EQ(prometheus.find("rfidmon_fusion_"), std::string::npos);
}

// ------------------------------------------------- monitoring service ----

// A scripted loopback conversation with known frame and admission counts:
// every service_* series must land on its exact expected delta. The IO
// thread has necessarily processed each request frame before its response
// reached the client, so reading the (atomic) counters between steps is
// race-free.
TEST(ObsService, ScriptedSessionLandsExactServiceDeltas) {
  obs::MetricsRegistry reg;
  service::ServiceConfig config;
  config.metrics = &reg;
  service::MonitorService svc{config};
  svc.start();

  service::ServiceClient client(svc.port());
  client.hello("acme");
  service::EnrollRequest inv;
  inv.inventory = "inv";
  inv.tolerance = 2;
  inv.zone_capacity = 30;
  inv.rounds = 2;
  for (std::uint32_t i = 0; i < 60; ++i) inv.tags.emplace_back(i, 0x900 + i);
  client.enroll(inv);

  service::StartRunRequest run;
  run.inventory = "inv";
  run.seed = 7;
  const service::StartOutcome outcome = client.start_run(run);
  ASSERT_TRUE(outcome.admitted.has_value());
  const service::RunOutcome result =
      client.await_verdict(outcome.admitted->run_id);
  EXPECT_EQ(result.verdict.verdict,
            static_cast<std::uint8_t>(fleet::GlobalVerdict::kIntact));
  (void)client.subscribe();

  // hello + enroll + start_run + subscribe parsed; HelloOk + EnrollOk +
  // RunAdmitted + RunVerdict + SubscribeOk queued (intact -> no alerts).
  EXPECT_EQ(cat::service_frames_total(reg, "in").value(), 4u);
  EXPECT_EQ(cat::service_frames_total(reg, "out").value(), 5u);
  EXPECT_EQ(cat::service_admissions_total(reg, "accepted").value(), 1u);
  EXPECT_EQ(cat::service_admissions_total(reg, "deferred").value(), 0u);
  EXPECT_EQ(cat::service_admissions_total(reg, "rejected").value(), 0u);
  EXPECT_EQ(cat::service_runs_total(reg, "intact").value(), 1u);
  EXPECT_EQ(cat::service_runs_total(reg, "aborted").value(), 0u);
  EXPECT_EQ(cat::service_run_latency_us(reg).count(), 1u);
  EXPECT_EQ(cat::service_active_connections(reg).value(), 1.0);
  EXPECT_EQ(cat::service_active_streams(reg).value(), 1.0);

  // One hostile peer: a flipped checksum costs exactly one typed error
  // (sent as a frame, so frames_out moves too) and never parses as input.
  {
    service::ServiceClient hostile(svc.port(),
                                   std::chrono::milliseconds(2000));
    std::vector<std::byte> bent = service::encode_frame(
        service::FrameType::kPing, service::encode(service::PingMsg{1}));
    bent.back() ^= std::byte{0xff};
    hostile.send_raw(bent);
    try {
      for (;;) (void)hostile.read_frame();
    } catch (const std::runtime_error&) {
      // server closed the connection after the typed error
    }
  }
  EXPECT_EQ(cat::service_frame_errors_total(reg, "bad_checksum").value(), 1u);
  EXPECT_EQ(cat::service_frames_total(reg, "in").value(), 4u);
  EXPECT_EQ(cat::service_frames_total(reg, "out").value(), 6u);
  EXPECT_EQ(cat::service_connections_total(reg, "client").value(), 2u);

  // Scrapes count themselves (before rendering, so each sees its own hit).
  (void)service::http_get(svc.http_port(), "/metrics");
  const std::string health = service::http_get(svc.http_port(), "/healthz");
  EXPECT_EQ(health, "ok\n");
  EXPECT_EQ(cat::service_http_requests_total(reg, "metrics").value(), 1u);
  EXPECT_EQ(cat::service_http_requests_total(reg, "healthz").value(), 1u);
  EXPECT_EQ(cat::service_http_requests_total(reg, "metrics_json").value(),
            0u);
  EXPECT_EQ(cat::service_connections_total(reg, "http").value(), 2u);

  svc.stop();
}

}  // namespace
