// Tests for the discrete-event air-interface driver.
#include <gtest/gtest.h>

#include "protocol/air_driver.h"
#include "tag/tag_set.h"
#include "util/random.h"

namespace {

using rfid::protocol::AirDriver;
using rfid::protocol::AirEventKind;
using rfid::protocol::TrpChallenge;
using rfid::protocol::UtrpChallenge;
using rfid::tag::TagSet;

UtrpChallenge make_utrp_challenge(std::uint32_t f, rfid::util::Rng& rng) {
  UtrpChallenge c;
  c.frame_size = f;
  for (std::uint32_t i = 0; i < f; ++i) c.seeds.push_back(rng());
  return c;
}

TEST(AirDriver, TrpTimeMatchesClosedForm) {
  rfid::util::Rng rng(1);
  const TagSet set = TagSet::make_random(150, rng);
  const rfid::radio::TimingModel timing;
  const AirDriver driver(timing);
  rfid::sim::EventQueue queue;
  const TrpChallenge challenge{200, rng()};
  const auto run = driver.run_trp_round(queue, set.tags(), challenge, rng);

  const std::uint64_t occupied = run.bitstring.count();
  EXPECT_DOUBLE_EQ(run.finish_us,
                   timing.trp_scan_us(200 - occupied, occupied));
  EXPECT_DOUBLE_EQ(queue.now(), run.finish_us);
}

TEST(AirDriver, TrpBitstringMatchesPlainReaderScan) {
  rfid::util::Rng rng_a(2);
  rfid::util::Rng rng_b(2);
  const TagSet set = TagSet::make_random(100, rng_a);
  (void)TagSet::make_random(100, rng_b);  // keep the two streams aligned
  const TrpChallenge challenge{128, 777};

  const AirDriver driver;
  rfid::sim::EventQueue queue;
  const auto via_events = driver.run_trp_round(queue, set.tags(), challenge, rng_a);
  const rfid::protocol::TrpReader reader;
  const auto direct = reader.scan(set.tags(), challenge, rng_b);
  EXPECT_EQ(via_events.bitstring, direct);
}

TEST(AirDriver, TimelineIsCompleteAndMonotone) {
  rfid::util::Rng rng(3);
  const TagSet set = TagSet::make_random(60, rng);
  const AirDriver driver;
  rfid::sim::EventQueue queue;
  const TrpChallenge challenge{80, rng()};
  const auto run = driver.run_trp_round(queue, set.tags(), challenge, rng);

  ASSERT_EQ(run.timeline.size(), 81u);  // query + one event per slot
  EXPECT_EQ(run.timeline.front().kind, AirEventKind::kQueryBroadcast);
  for (std::size_t i = 1; i < run.timeline.size(); ++i) {
    EXPECT_GT(run.timeline[i].at, run.timeline[i - 1].at);
  }
  EXPECT_DOUBLE_EQ(run.timeline.back().at, run.finish_us);
}

TEST(AirDriver, UtrpChargesReseedBroadcasts) {
  rfid::util::Rng rng(4);
  TagSet set = TagSet::make_random(80, rng);
  const rfid::radio::TimingModel timing;
  const AirDriver driver(timing);
  rfid::sim::EventQueue queue;
  const auto challenge = make_utrp_challenge(160, rng);
  const auto run = driver.run_utrp_round(queue, set.tags(), challenge);

  std::uint64_t reseeds = 0;
  std::uint64_t replies = 0;
  std::uint64_t empties = 0;
  for (const auto& event : run.timeline) {
    switch (event.kind) {
      case AirEventKind::kReseedBroadcast: ++reseeds; break;
      case AirEventKind::kReplySlot: ++replies; break;
      case AirEventKind::kEmptySlot: ++empties; break;
      case AirEventKind::kQueryBroadcast: break;
    }
  }
  EXPECT_EQ(replies + empties, 160u);
  EXPECT_GE(reseeds, 1u);
  EXPECT_DOUBLE_EQ(run.finish_us,
                   timing.utrp_scan_us(empties, replies, reseeds));
}

TEST(AirDriver, UtrpBitstringVerifiesAgainstServer) {
  rfid::util::Rng rng(5);
  TagSet set = TagSet::make_random(120, rng);
  const rfid::protocol::UtrpServer server(
      set, {.tolerated_missing = 3, .confidence = 0.95}, 20);
  const AirDriver driver;
  rfid::sim::EventQueue queue;
  const auto challenge = server.issue_challenge(rng);
  const auto run = driver.run_utrp_round(queue, set.tags(), challenge);
  EXPECT_TRUE(server.verify(challenge, run.bitstring).intact);
}

TEST(AirDriver, RoundsChainOnOneQueue) {
  // Two consecutive rounds on the same queue: the second starts where the
  // first ended, as on a real shared medium.
  rfid::util::Rng rng(6);
  const TagSet set = TagSet::make_random(40, rng);
  const AirDriver driver;
  rfid::sim::EventQueue queue;
  const TrpChallenge c1{64, rng()};
  const TrpChallenge c2{64, rng()};
  const auto first = driver.run_trp_round(queue, set.tags(), c1, rng);
  const auto second = driver.run_trp_round(queue, set.tags(), c2, rng);
  EXPECT_GT(second.finish_us, first.finish_us);
  EXPECT_GT(second.timeline.front().at, first.timeline.back().at - 1e-9);
}

TEST(AirDriver, UtrpIsSlowerThanTrpPerSlot) {
  // The cost Fig. 6 ignores: same population, UTRP's re-seeds make its
  // round take longer than a TRP round of equal frame size.
  rfid::util::Rng rng(7);
  TagSet set = TagSet::make_random(100, rng);
  const AirDriver driver;
  rfid::sim::EventQueue q1;
  rfid::sim::EventQueue q2;
  const TrpChallenge trp_c{256, rng()};
  const auto trp_run = driver.run_trp_round(q1, set.tags(), trp_c, rng);
  const auto utrp_c = make_utrp_challenge(256, rng);
  const auto utrp_run = driver.run_utrp_round(q2, set.tags(), utrp_c);
  EXPECT_GT(utrp_run.finish_us, trp_run.finish_us);
}

}  // namespace
