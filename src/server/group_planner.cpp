#include "server/group_planner.h"

#include <algorithm>

#include "math/frame_optimizer.h"
#include "util/expect.h"

namespace rfid::server {

GroupPlan plan_groups(const PlannerInput& input) {
  RFID_EXPECT(input.total_tags >= 1, "need at least one tag");
  RFID_EXPECT(input.alpha > 0.0 && input.alpha < 1.0, "alpha must be in (0,1)");

  const std::uint64_t capacity =
      input.max_group_size == 0 ? input.total_tags : input.max_group_size;
  RFID_EXPECT(capacity >= 1, "zone capacity must be positive");
  const std::uint64_t zone_count = (input.total_tags + capacity - 1) / capacity;
  RFID_EXPECT(input.total_tolerance + zone_count <= input.total_tags,
              "tolerance too large: every zone must be able to lose m_i + 1 tags");

  GroupPlan plan;
  plan.zones.reserve(zone_count);

  // Near-equal zone sizes: the first (N mod z) zones get one extra tag.
  const std::uint64_t base_size = input.total_tags / zone_count;
  const std::uint64_t oversized = input.total_tags % zone_count;

  // Proportional tolerance with exact total: floor allocation, then hand the
  // remainder to the largest zones (they shoulder theft most cheaply).
  std::vector<std::uint64_t> sizes(zone_count, base_size);
  for (std::uint64_t z = 0; z < oversized; ++z) ++sizes[z];
  std::vector<std::uint64_t> tolerances(zone_count, 0);
  std::uint64_t allocated = 0;
  for (std::uint64_t z = 0; z < zone_count; ++z) {
    tolerances[z] = input.total_tolerance * sizes[z] / input.total_tags;
    allocated += tolerances[z];
  }
  for (std::uint64_t z = 0; allocated < input.total_tolerance; ++z) {
    ++tolerances[z % zone_count];
    ++allocated;
  }

  plan.worst_zone_detection = 1.0;
  for (std::uint64_t z = 0; z < zone_count; ++z) {
    RFID_ENSURE(tolerances[z] + 1 <= sizes[z],
                "tolerance allocation exceeded a zone's size");
    const auto frame = math::optimize_trp_frame(sizes[z], tolerances[z],
                                                input.alpha, input.model);
    ZonePlan zone;
    zone.tags = sizes[z];
    zone.tolerance = tolerances[z];
    zone.frame_size = frame.frame_size;
    zone.detection = frame.predicted_detection;
    plan.total_slots += frame.frame_size;
    plan.worst_zone_detection =
        std::min(plan.worst_zone_detection, zone.detection);
    plan.zones.push_back(zone);
  }
  return plan;
}

std::vector<tag::TagSet> split_by_plan(const tag::TagSet& tags,
                                       const GroupPlan& plan) {
  std::uint64_t total = 0;
  for (const ZonePlan& zone : plan.zones) total += zone.tags;
  RFID_EXPECT(tags.size() == total,
              "population size does not match the plan's zone totals");
  std::vector<tag::TagSet> out;
  out.reserve(plan.zones.size());
  const std::span<const tag::Tag> all = tags.tags();
  std::size_t offset = 0;
  for (const ZonePlan& zone : plan.zones) {
    const std::span<const tag::Tag> slice =
        all.subspan(offset, static_cast<std::size_t>(zone.tags));
    out.emplace_back(std::vector<tag::Tag>(slice.begin(), slice.end()));
    offset += static_cast<std::size_t>(zone.tags);
  }
  return out;
}

std::vector<tag::ColumnarTagSet> split_columnar_by_plan(
    const tag::ColumnarTagSet& tags, const GroupPlan& plan) {
  std::uint64_t total = 0;
  for (const ZonePlan& zone : plan.zones) total += zone.tags;
  RFID_EXPECT(tags.size() == total,
              "population size does not match the plan's zone totals");
  std::vector<tag::ColumnarTagSet> out;
  out.reserve(plan.zones.size());
  std::size_t offset = 0;
  for (const ZonePlan& zone : plan.zones) {
    out.push_back(tags.slice(offset, static_cast<std::size_t>(zone.tags)));
    offset += static_cast<std::size_t>(zone.tags);
  }
  return out;
}

}  // namespace rfid::server
