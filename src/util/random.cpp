#include "util/random.h"

namespace rfid::util {

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method: multiply a 64-bit draw by the bound
  // and keep the high word; reject draws in the biased low region.
  // For bound == 0 (a caller bug) we degrade to returning 0 rather than UB.
  if (bound == 0) return 0;
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace rfid::util
