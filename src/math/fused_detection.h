// Generalized Theorem 1: pigeonhole detection fused from k noisy readers.
//
// One trustworthy reader makes Theorem 1's per-slot evidence exact: an
// expected-busy slot read empty IS a missing tag, so a single mismatched
// slot flags the zone. k real readers are neither exact nor trustworthy —
// each misses a busy slot's replies with probability p (fades, blocked
// antennas), and up to `assumed_faulty` of them may vote arbitrarily
// (crashed mid-frame, or adversarially forging "everything present"). The
// fusion layer (src/fusion) reduces the k observed bitstrings to one by
// strict-majority vote per slot; this header sizes the frame for that
// fused bitstring. Two effects enter the sizing:
//
//   * False empties. A truly-busy slot is fused empty when fewer than
//     t = floor(k/2)+1 readers hear it. With h = k - a honest readers each
//     hearing independently w.p. 1-p (worst case: the a faulty readers
//     vote empty), that happens with probability
//
//       eps = P( Binom(h, 1-p) < t ).
//
//     Exact-match verify would flag every such slot on an INTACT zone, so
//     the fused verdict only alarms at >= T mismatched slots, with T the
//     smallest threshold keeping the per-round false-alarm probability
//     within `alert_budget`:  T = min{ T : P(Binom(B, eps) >= T) <=
//     alert_budget }, B = min(n, f) an upper bound on busy slots.
//
//   * Missed detections. A truly-empty slot (a missing tag's slot) is
//     fused busy only when >= t readers vote busy; honest readers never
//     phantom a reply, so a <= floor((k-1)/2) faulty readers can never
//     mask it — the strict majority is exactly what the adversarial-reader
//     guarantee rests on. What CAN hide a theft is T itself: fewer than T
//     missing tags landing in present-empty slots is indistinguishable
//     from noise. Hence
//
//       g_k(n, x, f) = 1 - Sigma_i P(N0 = i) * P( Binom(x, i/f) < T )
//
//     with N0 ~ Binom(f, p_empty) exactly as in detection.h. At k = 1,
//     a = 0, p = 0: eps = 0, T = 1, and P(Binom(x, i/f) < 1) =
//     (1 - i/f)^x — the sum collapses to Eq. 2 verbatim.
//
// tests/fusion_test.cpp checks both reductions and validates g_k against
// Monte-Carlo ground truth of the full fuse-then-threshold pipeline.
#pragma once

#include <cstdint>

#include "math/detection.h"
#include "math/frame_optimizer.h"

namespace rfid::math {

/// The reader-redundancy model the generalized sizing is computed for.
struct FusedSizingParams {
  std::uint32_t readers = 1;         // k: observations fused per slot
  std::uint32_t assumed_faulty = 0;  // a: crashed-or-adversarial budget
  double slot_loss = 0.0;            // p: per-reader busy-slot miss prob
  /// Per-round probability budget for flagging an INTACT zone (drives the
  /// mismatch threshold T). Conventionally (1 - alpha) / 2.
  double alert_budget = 0.025;
};

/// Busy votes required for a fused slot to read busy: strict majority of
/// the `valid` observations, floor(valid/2) + 1.
[[nodiscard]] constexpr std::uint32_t fused_vote_threshold(
    std::uint32_t valid) noexcept {
  return valid / 2 + 1;
}

/// eps: probability a truly-busy slot is fused empty (worst case: every
/// faulty reader votes empty, single-occupancy slot).
[[nodiscard]] double fused_slot_false_empty(const FusedSizingParams& params);

/// T: smallest mismatch count that is alarm-worthy — P(Binom(B, eps) >= T)
/// <= alert_budget with B = min(n, f). Returns 1 when eps == 0 (the exact
/// single-trustworthy-reader verify).
[[nodiscard]] std::uint64_t fused_mismatch_threshold(
    std::uint64_t n, std::uint64_t f, const FusedSizingParams& params);

/// g_k(n, x, f): probability that x missing tags push the fused mismatch
/// count to the alarm threshold. Reduces to detection_probability (Eq. 2's
/// g) when the params are the trustworthy-reader point (k=1, a=0, p=0).
[[nodiscard]] double fused_detection_probability(
    std::uint64_t n, std::uint64_t x, std::uint64_t f,
    const FusedSizingParams& params,
    EmptySlotModel model = EmptySlotModel::kPoissonApprox);

/// Generalized Eq. (2): minimal f with g_k(n, m+1, f) > alpha. Throws
/// std::invalid_argument when no f up to kMaxFrameSize satisfies it (noise
/// too high for the requested confidence) — same contract as
/// optimize_trp_frame, to which it reduces at the trustworthy-reader point.
[[nodiscard]] TrpPlan optimize_fused_trp_frame(
    std::uint64_t n, std::uint64_t m, double alpha,
    const FusedSizingParams& params,
    EmptySlotModel model = EmptySlotModel::kPoissonApprox);

}  // namespace rfid::math
