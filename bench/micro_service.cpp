// Multi-tenant service sweep: N concurrent tenants, each on its own real
// loopback connection, enroll a small inventory and drive a monitoring run
// to its verdict. Reports end-to-end throughput (runs/sec over the run
// phase), client-observed admission-to-verdict latency quantiles (p50/p99,
// including any time spent deferred), and peak RSS — the numbers quoted in
// EXPERIMENTS.md. The top rung (1000 tenants) is the PR's acceptance bar:
// the service must sustain it with bounded memory and a sane p99.
//
// Takes no meaningful flags; unknown flags (e.g. the --benchmark_min_time
// scripts/run_all.sh passes to micro_* binaries) are ignored. --tenants N
// replaces the sweep with a single rung.
#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/client.h"
#include "service/service.h"

namespace {

using namespace rfid;
using Clock = std::chrono::steady_clock;

constexpr std::uint32_t kTagsPerTenant = 40;

service::EnrollRequest tenant_inventory() {
  service::EnrollRequest req;
  req.inventory = "inv";
  req.tolerance = 1;
  req.zone_capacity = 0;  // single zone per tenant
  req.rounds = 1;
  req.tags.reserve(kTagsPerTenant);
  for (std::uint32_t i = 0; i < kTagsPerTenant; ++i) {
    req.tags.emplace_back(i, 0xb000 + i);
  }
  return req;
}

double quantile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

long peak_rss_kb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;
}

struct RungResult {
  int tenants = 0;
  int completed = 0;
  int failed = 0;
  double connect_s = 0.0;
  double run_s = 0.0;
  double runs_per_s = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  long rss_kb = 0;
};

RungResult run_rung(int tenants) {
  service::ServiceConfig config;
  config.workers = std::max(2u, std::thread::hardware_concurrency());
  config.max_inflight = 64;
  config.max_inflight_per_tenant = 1;
  config.max_deferred = static_cast<std::size_t>(tenants) + 64;
  config.token_capacity = 1e12;  // saturation, not rate, is the subject
  config.tokens_per_sec = 1e12;
  service::MonitorService svc{config};
  svc.start();

  std::vector<std::unique_ptr<service::ServiceClient>> clients(
      static_cast<std::size_t>(tenants));
  std::vector<double> latencies_ms(static_cast<std::size_t>(tenants), -1.0);
  std::atomic<int> failures{0};

  // Phase 1: every tenant connects, authenticates, and enrolls; all
  // connections stay open so the run phase really is N concurrent tenants.
  const auto t0 = Clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(tenants));
    for (int i = 0; i < tenants; ++i) {
      threads.emplace_back([&, i] {
        try {
          auto client = std::make_unique<service::ServiceClient>(
              svc.port(), std::chrono::milliseconds(60000));
          client->hello("tenant-" + std::to_string(i));
          client->enroll(tenant_inventory());
          clients[static_cast<std::size_t>(i)] = std::move(client);
        } catch (const std::exception&) {
          failures.fetch_add(1);
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  const auto t1 = Clock::now();

  // Phase 2: everyone fires a run at once and blocks for its verdict.
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(tenants));
    for (int i = 0; i < tenants; ++i) {
      if (clients[static_cast<std::size_t>(i)] == nullptr) continue;
      threads.emplace_back([&, i] {
        service::ServiceClient& client = *clients[static_cast<std::size_t>(i)];
        try {
          service::StartRunRequest run;
          run.inventory = "inv";
          run.seed = static_cast<std::uint64_t>(i) + 1;
          const auto start = Clock::now();
          const service::StartOutcome outcome = client.start_run(run);
          if (!outcome.admitted.has_value()) {
            failures.fetch_add(1);
            return;
          }
          (void)client.await_verdict(outcome.admitted->run_id);
          latencies_ms[static_cast<std::size_t>(i)] =
              std::chrono::duration<double, std::milli>(Clock::now() - start)
                  .count();
          client.goodbye();
        } catch (const std::exception&) {
          failures.fetch_add(1);
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  const auto t2 = Clock::now();
  clients.clear();
  (void)svc.stop();

  RungResult r;
  r.tenants = tenants;
  r.failed = failures.load();
  r.connect_s = std::chrono::duration<double>(t1 - t0).count();
  r.run_s = std::chrono::duration<double>(t2 - t1).count();
  std::vector<double> done;
  done.reserve(latencies_ms.size());
  for (const double ms : latencies_ms) {
    if (ms >= 0.0) done.push_back(ms);
  }
  r.completed = static_cast<int>(done.size());
  std::sort(done.begin(), done.end());
  r.runs_per_s = r.run_s > 0.0 ? static_cast<double>(done.size()) / r.run_s
                               : 0.0;
  r.p50_ms = quantile(done, 0.50);
  r.p99_ms = quantile(done, 0.99);
  r.rss_kb = peak_rss_kb();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  (void)service::raise_fd_limit();
  std::vector<int> sweep = {128, 512, 1000};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tenants") == 0 && i + 1 < argc) {
      sweep = {std::atoi(argv[++i])};
    }
    // anything else (e.g. --benchmark_min_time from run_all.sh): ignored
  }

  std::printf("micro_service: concurrent-tenant sweep "
              "(%u tags/tenant, 1 zone, 1 round each)\n\n",
              kTagsPerTenant);
  std::printf("%8s %10s %8s %11s %11s %10s %10s %10s\n", "tenants",
              "completed", "failed", "connect_s", "run_s", "runs/s",
              "p50_ms", "p99_ms");
  bool ok = true;
  for (const int tenants : sweep) {
    const RungResult r = run_rung(tenants);
    std::printf("%8d %10d %8d %11.3f %11.3f %10.0f %10.2f %10.2f\n",
                r.tenants, r.completed, r.failed, r.connect_s, r.run_s,
                r.runs_per_s, r.p50_ms, r.p99_ms);
    std::printf("%8s peak RSS %.1f MiB\n", "",
                static_cast<double>(r.rss_kb) / 1024.0);
    ok = ok && r.failed == 0 && r.completed == r.tenants;
  }
  if (!ok) {
    std::printf("\nFAILED: not every tenant completed a run\n");
    return 1;
  }
  return 0;
}
