// Tests for the crash-consistent storage layer: backend semantics, journal
// framing, full-state codec, and DurableInventoryServer recovery. The
// exhaustive crash-point sweep lives in storage_torture_test.cpp; these are
// the targeted unit tests.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <string>
#include <variant>

#include "fault/storage_fault.h"
#include "protocol/trp.h"
#include "protocol/utrp.h"
#include "storage/backend.h"
#include "storage/durable_server.h"
#include "storage/journal.h"
#include "storage/server_state.h"
#include "tag/tag_set.h"
#include "util/random.h"

namespace {

using rfid::fault::CrashInjected;
using rfid::fault::FaultyBackend;
using rfid::fault::StorageFaultPlan;
using rfid::server::GroupConfig;
using rfid::server::GroupId;
using rfid::server::InventoryServer;
using rfid::server::ProtocolKind;
using rfid::storage::DurabilityConfig;
using rfid::storage::DurableInventoryServer;
using rfid::storage::EnrollRecord;
using rfid::storage::FileBackend;
using rfid::storage::IoError;
using rfid::storage::JournalRecord;
using rfid::storage::MemoryBackend;
using rfid::storage::ResyncRecord;
using rfid::storage::TrpRoundRecord;
using rfid::storage::UtrpRoundRecord;
using rfid::tag::TagSet;

GroupConfig trp_config(std::string name, std::uint64_t m) {
  GroupConfig cfg;
  cfg.name = std::move(name);
  cfg.policy = {.tolerated_missing = m, .confidence = 0.95};
  cfg.protocol = ProtocolKind::kTrp;
  return cfg;
}

GroupConfig utrp_config(std::string name, std::uint64_t m) {
  GroupConfig cfg = trp_config(std::move(name), m);
  cfg.protocol = ProtocolKind::kUtrp;
  return cfg;
}

// ---------------------------------------------------------------------------
// MemoryBackend

TEST(MemoryBackend, AppendIsBufferedUntilFlush) {
  MemoryBackend b;
  b.append("f", "hello");
  EXPECT_TRUE(b.exists("f"));
  EXPECT_EQ(b.read("f"), "hello");        // the live process sees its writes
  EXPECT_EQ(b.durable_bytes("f"), "");    // a power cut would lose them
  b.flush("f");
  EXPECT_EQ(b.durable_bytes("f"), "hello");
  b.append("f", " world");
  b.crash();
  EXPECT_EQ(b.read("f"), "hello");  // unflushed suffix vanished
}

TEST(MemoryBackend, RenameIsAtomicReplace) {
  MemoryBackend b;
  b.append("tmp", "new");
  b.flush("tmp");
  b.append("dst", "old");
  b.flush("dst");
  b.rename("tmp", "dst");
  EXPECT_FALSE(b.exists("tmp"));
  EXPECT_EQ(b.read("dst"), "new");
  EXPECT_THROW(b.rename("missing", "x"), IoError);
}

TEST(MemoryBackend, RemoveAndList) {
  MemoryBackend b;
  b.append("a", "1");
  b.append("b", "2");
  auto names = b.list();
  EXPECT_EQ(names.size(), 2u);
  b.remove("a");
  EXPECT_FALSE(b.exists("a"));
  EXPECT_THROW(b.remove("a"), IoError);
  EXPECT_THROW((void)b.read("a"), IoError);
}

TEST(MemoryBackend, CorruptDurableFlipsOneBit) {
  MemoryBackend b;
  b.append("f", "abc");
  b.flush("f");
  b.corrupt_durable("f", 1, 0);
  EXPECT_EQ(b.durable_bytes("f"), std::string("a") +
                                      static_cast<char>('b' ^ 1) + "c");
}

// ---------------------------------------------------------------------------
// FileBackend

TEST(FileBackend, RoundTripsThroughRealFiles) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "rfidmon_storage_test")
          .string();
  std::filesystem::remove_all(dir);
  FileBackend b(dir);
  b.append("snap", "line one\n");
  b.append("snap", "line two\n");
  b.flush("snap");
  EXPECT_EQ(b.read("snap"), "line one\nline two\n");
  b.rename("snap", "snap2");
  EXPECT_FALSE(b.exists("snap"));
  EXPECT_TRUE(b.exists("snap2"));
  EXPECT_EQ(b.list().size(), 1u);
  b.remove("snap2");
  EXPECT_TRUE(b.list().empty());
  EXPECT_THROW((void)b.read("nope"), IoError);
  // Names that escape the directory are API misuse, not I/O failure.
  EXPECT_THROW(b.append("../evil", "x"), std::invalid_argument);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Journal framing

JournalRecord sample_enroll(rfid::util::Rng& rng) {
  EnrollRecord r;
  r.config = utrp_config("cage 7", 3);
  r.tags = TagSet::make_random(12, rng);
  return r;
}

TEST(Journal, EncodeScanRoundTripsEveryKind) {
  rfid::util::Rng rng(11);
  std::string bytes(rfid::storage::kJournalMagic);
  bytes += encode_record(sample_enroll(rng));
  bytes += encode_record(TrpRoundRecord{
      0, {.frame_size = 32, .r = 987654321}, rfid::bits::Bitstring(32)});
  UtrpRoundRecord utrp_record;
  utrp_record.group = 1;
  utrp_record.challenge = {.frame_size = 3, .seeds = {7, 8, 9}};
  utrp_record.reported = rfid::bits::Bitstring(3);
  utrp_record.deadline_met = false;
  bytes += encode_record(utrp_record);
  bytes += encode_record(ResyncRecord{1, TagSet::make_random(4, rng)});

  const auto scan = rfid::storage::scan_journal(bytes);
  EXPECT_TRUE(scan.header_valid);
  EXPECT_EQ(scan.dropped_bytes, 0u);
  EXPECT_EQ(scan.valid_bytes, bytes.size());
  ASSERT_EQ(scan.records.size(), 4u);

  const auto& enroll = std::get<EnrollRecord>(scan.records[0]);
  EXPECT_EQ(enroll.config.name, "cage 7");
  EXPECT_EQ(enroll.config.protocol, ProtocolKind::kUtrp);
  EXPECT_EQ(enroll.tags.size(), 12u);
  const auto& trp = std::get<TrpRoundRecord>(scan.records[1]);
  EXPECT_EQ(trp.challenge.frame_size, 32u);
  EXPECT_EQ(trp.challenge.r, 987654321u);
  const auto& utrp = std::get<UtrpRoundRecord>(scan.records[2]);
  EXPECT_EQ(utrp.group, 1u);
  EXPECT_EQ(utrp.challenge.seeds, (std::vector<std::uint64_t>{7, 8, 9}));
  EXPECT_FALSE(utrp.deadline_met);
  EXPECT_EQ(std::get<ResyncRecord>(scan.records[3]).audited.size(), 4u);
}

TEST(Journal, TornTailIsTruncatedNotFatal) {
  rfid::util::Rng rng(12);
  std::string bytes(rfid::storage::kJournalMagic);
  bytes += encode_record(sample_enroll(rng));
  const std::size_t clean = bytes.size();
  bytes += encode_record(ResyncRecord{0, TagSet::make_random(4, rng)});
  bytes.resize(clean + 5);  // crash mid-append: half a frame on disk

  const auto scan = rfid::storage::scan_journal(bytes);
  EXPECT_TRUE(scan.header_valid);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.valid_bytes, clean);
  EXPECT_EQ(scan.dropped_bytes, 5u);
}

TEST(Journal, RottedRecordTruncatesSuffix) {
  rfid::util::Rng rng(13);
  std::string bytes(rfid::storage::kJournalMagic);
  bytes += encode_record(sample_enroll(rng));
  const std::size_t first_end = bytes.size();
  bytes += encode_record(ResyncRecord{0, TagSet::make_random(4, rng)});
  bytes += encode_record(ResyncRecord{0, TagSet::make_random(4, rng)});
  bytes[first_end + 20] = static_cast<char>(bytes[first_end + 20] ^ 0x40);

  const auto scan = rfid::storage::scan_journal(bytes);
  // The rotted record and everything behind it is dropped; the clean prefix
  // survives. Damage is data, not an exception.
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.valid_bytes, first_end);
  EXPECT_GT(scan.dropped_bytes, 0u);
}

TEST(Journal, BadHeaderRejectsWholeFile) {
  const auto scan = rfid::storage::scan_journal("NOT A JOURNAL\n");
  EXPECT_FALSE(scan.header_valid);
  EXPECT_TRUE(scan.records.empty());
}

// ---------------------------------------------------------------------------
// Full-state codec (snapshot + AUX)

/// A server with history: two groups, a failed TRP round (alert), a clean
/// UTRP round, a deadline miss (alert + needs_resync), and a resync (alert).
InventoryServer server_with_history(rfid::util::Rng& rng) {
  InventoryServer server;
  TagSet shelf = TagSet::make_random(80, rng);
  TagSet cage = TagSet::make_random(60, rng);
  const GroupId g0 = server.enroll(shelf, trp_config("shelf", 0));
  const GroupId g1 = server.enroll(cage, utrp_config("cage", 2));

  const rfid::protocol::TrpReader trp_reader;
  TagSet looted = shelf;
  (void)looted.steal_random(20, rng);
  const auto c0 = server.challenge_trp(g0, rng);
  (void)server.submit_trp(g0, c0, trp_reader.scan(looted.tags(), c0, rng));

  const rfid::protocol::UtrpReader utrp_reader;
  const auto c1 = server.challenge_utrp(g1, rng);
  (void)server.submit_utrp(g1, c1, utrp_reader.scan(cage.tags(), c1).bitstring,
                           /*deadline_met=*/true);
  cage.begin_round();
  const auto c2 = server.challenge_utrp(g1, rng);
  (void)server.submit_utrp(g1, c2, utrp_reader.scan(cage.tags(), c2).bitstring,
                           /*deadline_met=*/false);
  cage.begin_round();
  server.resync(g1, cage);
  return server;
}

TEST(ServerState, DumpBuildRoundTripIsBitIdentical) {
  rfid::util::Rng rng(21);
  const InventoryServer server = server_with_history(rng);
  ASSERT_GE(server.alerts().size(), 2u);

  const std::string dump = rfid::storage::dump_state(server);
  std::istringstream is(dump);
  const auto state = rfid::storage::read_state(is);
  const InventoryServer rebuilt = rfid::storage::build_server(state);

  EXPECT_EQ(rfid::storage::dump_state(rebuilt), dump);
  EXPECT_EQ(rebuilt.alerts().size(), server.alerts().size());
  EXPECT_EQ(rebuilt.rounds_completed(GroupId{1}), 2u);
  EXPECT_FALSE(rebuilt.needs_resync(GroupId{1}));
}

TEST(ServerState, PlainSnapshotReadsAsZeroHistory) {
  rfid::util::Rng rng(22);
  const InventoryServer server = server_with_history(rng);
  std::stringstream plain;
  rfid::server::save_snapshot(plain, rfid::server::enrolled_groups(server));
  const auto state = rfid::storage::read_state(plain);
  EXPECT_EQ(state.groups.size(), 2u);
  EXPECT_TRUE(state.alerts.empty());
  EXPECT_EQ(state.group_states[1].rounds, 0u);
}

TEST(ServerState, AuxDamageIsRejectedWithContext) {
  rfid::util::Rng rng(23);
  std::string dump = rfid::storage::dump_state(server_with_history(rng));

  {
    // Flip a digit inside an ALERT line: AUX checksum must catch it.
    std::string bad = dump;
    const auto pos = bad.find("ALERT ");
    ASSERT_NE(pos, std::string::npos);
    bad[pos + 6] = bad[pos + 6] == '0' ? '1' : '0';
    std::istringstream is(bad);
    EXPECT_THROW((void)rfid::storage::read_state(is), std::invalid_argument);
  }
  {
    // Cut the file before ENDAUX: truncation must be named, with a line.
    std::string bad = dump.substr(0, dump.rfind("ENDAUX"));
    std::istringstream is(bad);
    try {
      (void)rfid::storage::read_state(is);
      FAIL() << "truncated AUX accepted";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("aux line"), std::string::npos)
          << e.what();
    }
  }
}

// ---------------------------------------------------------------------------
// DurableInventoryServer

/// Drives a short mixed workload through a durable server; returns the live
/// tag sets so callers can continue the story.
struct Workload {
  TagSet shelf;
  TagSet cage;
  GroupId g0, g1;
};

Workload run_workload(DurableInventoryServer& durable, rfid::util::Rng& rng) {
  Workload w;
  w.shelf = TagSet::make_random(70, rng);
  w.cage = TagSet::make_random(50, rng);
  w.g0 = durable.enroll(w.shelf, trp_config("shelf", 1));
  w.g1 = durable.enroll(w.cage, utrp_config("cage", 2));

  const rfid::protocol::TrpReader trp_reader;
  const rfid::protocol::UtrpReader utrp_reader;
  for (int i = 0; i < 2; ++i) {
    const auto c = durable.challenge_trp(w.g0, rng);
    (void)durable.submit_trp(w.g0, c, trp_reader.scan(w.shelf.tags(), c, rng));
  }
  for (int i = 0; i < 2; ++i) {
    const auto c = durable.challenge_utrp(w.g1, rng);
    (void)durable.submit_utrp(w.g1, c,
                              utrp_reader.scan(w.cage.tags(), c).bitstring,
                              /*deadline_met=*/true);
    w.cage.begin_round();
  }
  return w;
}

TEST(DurableServer, StateSurvivesReopen) {
  MemoryBackend backend;
  rfid::util::Rng rng(31);
  std::string fingerprint;
  {
    DurableInventoryServer durable(backend);
    EXPECT_TRUE(durable.recovery_report().clean());
    EXPECT_FALSE(durable.recovery_report().snapshot_loaded);
    (void)run_workload(durable, rng);
    fingerprint = rfid::storage::dump_state(durable.server());
    EXPECT_EQ(durable.journal_records(), 6u);
  }
  backend.crash();  // everything was flushed record-by-record; no-op

  DurableInventoryServer reopened(backend);
  EXPECT_EQ(rfid::storage::dump_state(reopened.server()), fingerprint);
  EXPECT_TRUE(reopened.recovery_report().clean());
  EXPECT_EQ(reopened.recovery_report().records_replayed, 6u);
  EXPECT_FALSE(reopened.recovery_report().snapshot_loaded);
}

TEST(DurableServer, RotationCheckpointsAndPrunes) {
  MemoryBackend backend;
  rfid::util::Rng rng(32);
  DurabilityConfig cfg;
  cfg.keep_generations = 1;
  DurableInventoryServer durable(backend, cfg);
  Workload w = run_workload(durable, rng);
  const std::string fingerprint = rfid::storage::dump_state(durable.server());

  durable.rotate();
  EXPECT_EQ(durable.generation(), 1u);
  EXPECT_EQ(durable.journal_records(), 0u);
  EXPECT_TRUE(backend.exists(durable.snapshot_name(1)));
  EXPECT_FALSE(backend.exists(durable.journal_name(0)));  // pruned (keep=1)

  durable.rotate();  // idle rotation: same state, next generation
  EXPECT_EQ(durable.generation(), 2u);
  EXPECT_FALSE(backend.exists(durable.snapshot_name(1)));

  DurableInventoryServer reopened(backend, cfg);
  EXPECT_EQ(rfid::storage::dump_state(reopened.server()), fingerprint);
  EXPECT_TRUE(reopened.recovery_report().snapshot_loaded);
  EXPECT_EQ(reopened.recovery_report().base_generation, 2u);
  EXPECT_EQ(reopened.recovery_report().records_replayed, 0u);
  (void)w;
}

TEST(DurableServer, AutoRotationAfterRecordThreshold) {
  MemoryBackend backend;
  rfid::util::Rng rng(33);
  DurabilityConfig cfg;
  cfg.rotate_after_records = 4;
  DurableInventoryServer durable(backend, cfg);
  (void)run_workload(durable, rng);  // 6 records -> one auto-rotation
  EXPECT_EQ(durable.generation(), 1u);
  EXPECT_EQ(durable.journal_records(), 2u);

  DurableInventoryServer reopened(backend, cfg);
  EXPECT_EQ(rfid::storage::dump_state(reopened.server()),
            rfid::storage::dump_state(durable.server()));
  EXPECT_EQ(reopened.recovery_report().records_replayed, 2u);
}

TEST(DurableServer, TornJournalTailIsDroppedAndHealed) {
  MemoryBackend backend;
  rfid::util::Rng rng(34);
  std::string before_last;
  {
    DurableInventoryServer durable(backend);
    Workload w = run_workload(durable, rng);
    before_last = rfid::storage::dump_state(durable.server());
    // One more UTRP round, then rot a byte inside its journal record.
    const auto c = durable.challenge_utrp(w.g1, rng);
    (void)durable.submit_utrp(
        w.g1, c, rfid::protocol::UtrpReader{}.scan(w.cage.tags(), c).bitstring,
        true);
  }
  const std::string journal = "rfidmon.journal.0";
  backend.corrupt_durable(journal, backend.durable_bytes(journal).size() - 3);

  DurableInventoryServer recovered(backend);
  EXPECT_EQ(rfid::storage::dump_state(recovered.server()), before_last);
  EXPECT_FALSE(recovered.recovery_report().clean());
  EXPECT_GT(recovered.recovery_report().truncated_bytes, 0u);
  EXPECT_TRUE(recovered.recovery_report().rotated_after_recovery);
  // Healing re-checkpointed: the next open is clean again.
  DurableInventoryServer again(backend);
  EXPECT_TRUE(again.recovery_report().clean());
  EXPECT_EQ(rfid::storage::dump_state(again.server()), before_last);
}

TEST(DurableServer, RottedSnapshotFallsBackToJournalChain) {
  MemoryBackend backend;
  rfid::util::Rng rng(35);
  std::string fingerprint;
  {
    DurableInventoryServer durable(backend);
    Workload w = run_workload(durable, rng);
    durable.rotate();  // snapshot.1 + journal.1
    const auto c = durable.challenge_trp(w.g0, rng);
    (void)durable.submit_trp(
        w.g0, c, rfid::protocol::TrpReader{}.scan(w.shelf.tags(), c, rng));
    fingerprint = rfid::storage::dump_state(durable.server());
  }
  // Rot the snapshot. journal.0 (still retained: keep_generations=2) plus
  // journal.1 re-derive the same state from scratch.
  backend.corrupt_durable("rfidmon.snapshot.1", 100);

  DurableInventoryServer recovered(backend);
  EXPECT_EQ(rfid::storage::dump_state(recovered.server()), fingerprint);
  EXPECT_FALSE(recovered.recovery_report().snapshot_loaded);
  EXPECT_EQ(recovered.recovery_report().snapshots_skipped, 1u);
  EXPECT_EQ(recovered.recovery_report().records_replayed, 7u);
  EXPECT_TRUE(recovered.recovery_report().rotated_after_recovery);
}

TEST(DurableServer, PreValidationKeepsBadMutationsOutOfTheJournal) {
  MemoryBackend backend;
  rfid::util::Rng rng(36);
  DurableInventoryServer durable(backend);
  Workload w = run_workload(durable, rng);

  EXPECT_THROW((void)durable.enroll(TagSet{}, trp_config("empty", 0)),
               std::invalid_argument);
  EXPECT_THROW((void)durable.enroll(TagSet::make_random(3, rng),
                                    trp_config("shelf", 0)),  // duplicate name
               std::invalid_argument);
  EXPECT_THROW((void)durable.submit_trp(w.g1, {.frame_size = 8, .r = 1},
                                        rfid::bits::Bitstring(8)),
               std::invalid_argument);  // UTRP group
  EXPECT_THROW((void)durable.submit_utrp(w.g1, {.frame_size = 8, .seeds = {1}},
                                         rfid::bits::Bitstring(8), true),
               std::invalid_argument);  // seed count != frame
  EXPECT_THROW(durable.resync(w.g1, TagSet::make_random(3, rng)),
               std::invalid_argument);  // wrong audit size
  // None of those may have journaled: a reopen replays cleanly.
  EXPECT_EQ(durable.journal_records(), 6u);
  DurableInventoryServer reopened(backend);
  EXPECT_TRUE(reopened.recovery_report().clean());
  EXPECT_EQ(rfid::storage::dump_state(reopened.server()),
            rfid::storage::dump_state(durable.server()));
}

TEST(DurableServer, WorksOnFileBackend) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "rfidmon_durable_test")
          .string();
  std::filesystem::remove_all(dir);
  FileBackend backend(dir);
  rfid::util::Rng rng(37);
  std::string fingerprint;
  {
    DurableInventoryServer durable(backend);
    (void)run_workload(durable, rng);
    durable.rotate();
    fingerprint = rfid::storage::dump_state(durable.server());
  }
  DurableInventoryServer reopened(backend);
  EXPECT_EQ(rfid::storage::dump_state(reopened.server()), fingerprint);
  EXPECT_TRUE(reopened.recovery_report().clean());
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// FaultyBackend

TEST(FaultyBackend, CrashAtOpCountsOnlyMutations) {
  MemoryBackend inner;
  StorageFaultPlan plan;
  plan.crash_at_op = 2;
  FaultyBackend faulty(inner, plan);
  faulty.append("f", "a");
  (void)faulty.read("f");    // reads are free
  (void)faulty.exists("f");  // so are probes
  EXPECT_THROW(faulty.flush("f"), CrashInjected);
  EXPECT_EQ(faulty.mutating_ops(), 2u);
}

TEST(FaultyBackend, TornCrashPersistsOnlyAPrefix) {
  MemoryBackend inner;
  StorageFaultPlan plan;
  plan.crash_at_op = 1;
  plan.torn_keep_fraction = 0.5;
  FaultyBackend faulty(inner, plan);
  EXPECT_THROW(faulty.append("f", "abcdefgh"), CrashInjected);
  inner.crash();
  // The torn prefix was forced durable before the "power cut".
  EXPECT_EQ(inner.durable_bytes("f"), "abcd");
}

TEST(FaultyBackend, CrashBeforeEffectLeavesNothing) {
  MemoryBackend inner;
  StorageFaultPlan plan;
  plan.crash_at_op = 1;
  plan.crash_before_effect = true;
  plan.torn_keep_fraction = 1.0;
  FaultyBackend faulty(inner, plan);
  EXPECT_THROW(faulty.append("f", "abcdefgh"), CrashInjected);
  inner.crash();
  EXPECT_FALSE(inner.exists("f"));
}

TEST(FaultyBackend, LyingFlushDropsDataAtCrash) {
  MemoryBackend inner;
  StorageFaultPlan plan;
  plan.lying_flush_from_op = 1;
  FaultyBackend faulty(inner, plan);
  faulty.append("f", "abc");
  faulty.flush("f");  // reports success, persists nothing
  EXPECT_EQ(inner.read("f"), "abc");
  inner.crash();
  EXPECT_EQ(inner.durable_bytes("f"), "");
}

TEST(FaultyBackend, PartialAppendFailsWithoutCrashing) {
  MemoryBackend inner;
  StorageFaultPlan plan;
  plan.partial_append_at = 2;
  plan.partial_append_keep_fraction = 0.25;
  FaultyBackend faulty(inner, plan);
  faulty.append("f", "full");
  EXPECT_THROW(faulty.append("f", "abcdefgh"), IoError);
  faulty.append("f", "more");  // the process lives on
  EXPECT_EQ(inner.read("f"), "fullabmore");
}

TEST(DurableServer, SurvivesAPartialAppendByRotating) {
  // Disk-full during a journal append: the mutation fails (IoError), but the
  // torn prefix must not poison later records — the server abandons the
  // damaged journal by checkpointing onto a fresh generation.
  MemoryBackend inner;
  rfid::util::Rng rng(38);
  DurableInventoryServer setup(inner);
  Workload w = run_workload(setup, rng);
  const std::string before = rfid::storage::dump_state(setup.server());

  StorageFaultPlan plan;
  plan.partial_append_at = 1;
  plan.partial_append_keep_fraction = 0.5;
  FaultyBackend faulty(inner, plan);
  DurableInventoryServer durable(faulty);
  EXPECT_EQ(rfid::storage::dump_state(durable.server()), before);

  const auto c = durable.challenge_trp(w.g0, rng);
  const auto reported = rfid::protocol::TrpReader{}.scan(w.shelf.tags(), c, rng);
  EXPECT_THROW((void)durable.submit_trp(w.g0, c, reported), IoError);
  EXPECT_EQ(rfid::storage::dump_state(durable.server()), before);

  // The same mutation, retried, succeeds into the fresh generation…
  (void)durable.submit_trp(w.g0, c, reported);
  const std::string after = rfid::storage::dump_state(durable.server());
  EXPECT_NE(after, before);
  // …and a reopen sees exactly the post-retry state.
  DurableInventoryServer reopened(inner);
  EXPECT_EQ(rfid::storage::dump_state(reopened.server()), after);
}

}  // namespace
