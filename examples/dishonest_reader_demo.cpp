// Dishonest reader walkthrough: why TRP needs UTRP (Secs. 5.1–5.4).
//
// Act 1 — replay: a reader returns last week's bitstring; fresh (f, r)
//         randomness defeats it.
// Act 2 — Alg. 4 split attack: the thief's reader and a collaborator OR
//         their half-scans together and TRP is fooled every time.
// Act 3 — UTRP: the server derives the adversary's communication budget c
//         from its verification deadline, sizes the frame by Eq. (3), and
//         the same split attack is caught.
#include <cstdio>

#include "rfidmon.h"

int main() {
  using namespace rfid;
  util::Rng rng(2008);

  constexpr std::uint64_t kTags = 500;
  constexpr std::uint64_t kTolerance = 5;
  tag::TagSet shelf = tag::TagSet::make_random(kTags, rng);

  std::printf("=== Act 1: replay attack vs TRP ===\n");
  const protocol::TrpServer trp_server(
      shelf.ids(), {.tolerated_missing = kTolerance, .confidence = 0.95});
  const protocol::TrpReader reader;
  const auto old_challenge = trp_server.issue_challenge(rng);
  const auto recorded = reader.scan(shelf.tags(), old_challenge, rng);
  std::printf("reader records a bitstring under last week's (f, r): verdict %s\n",
              trp_server.verify(old_challenge, recorded).intact ? "intact" : "alert");
  const auto fresh = trp_server.issue_challenge(rng);
  std::printf("replaying it against a FRESH challenge: verdict %s\n\n",
              trp_server.verify(fresh, recorded).intact ? "intact (bad!)"
                                                        : "ALERT — replay caught");

  std::printf("=== Act 2: Alg. 4 split attack vs TRP ===\n");
  tag::TagSet stolen = shelf.steal_random(kTolerance + 1, rng);
  std::printf("thief removes %llu tags and hands them to a collaborator\n",
              static_cast<unsigned long long>(stolen.size()));
  int fooled = 0;
  constexpr int kRounds = 10;
  for (int i = 0; i < kRounds; ++i) {
    const auto c = trp_server.issue_challenge(rng);
    const auto attack = attack::run_trp_split_attack(
        shelf.tags(), stolen.tags(), hash::SlotHasher{}, c, rng);
    if (trp_server.verify(c, attack.forged).intact) ++fooled;
  }
  std::printf("TRP fooled in %d/%d rounds with ONE reader-to-reader message "
              "each\n\n", fooled, kRounds);

  std::printf("=== Act 3: the same split attack vs UTRP ===\n");
  // The server knows honest scans take STmin..STmax and that a forwarding
  // hop between rogue readers costs ~2 ms; the deadline limits the pair to
  // c = (t - STmin)/tcomm messages (Sec. 5.4).
  const radio::TimingModel timing;
  const auto probe_plan =
      math::optimize_utrp_frame(kTags, kTolerance, 0.95, /*c=*/20);
  const double st_typical =
      timing.utrp_scan_us(probe_plan.frame_size - kTags, kTags, kTags / 2);
  const double deadline = st_typical * 1.08;   // STmax with a little margin
  const double st_min = st_typical * 0.97;
  const std::uint64_t budget =
      radio::communication_budget(deadline, st_min, /*tcomm=*/2000.0);
  std::printf("deadline %.0f ms, honest minimum %.0f ms, 2 ms per hop "
              "=> adversary budget c = %llu messages\n",
              deadline / 1000.0, st_min / 1000.0,
              static_cast<unsigned long long>(budget));

  protocol::UtrpServer utrp_server(
      shelf, {.tolerated_missing = kTolerance, .confidence = 0.95}, budget);
  // Note: enrollment happened before the theft in reality; reconstruct that
  // by enrolling the union. (Counters are all zero either way.)
  {
    std::vector<tag::Tag> everyone(shelf.tags().begin(), shelf.tags().end());
    everyone.insert(everyone.end(), stolen.tags().begin(), stolen.tags().end());
    utrp_server = protocol::UtrpServer(
        tag::TagSet(std::move(everyone)),
        {.tolerated_missing = kTolerance, .confidence = 0.95}, budget);
  }
  std::printf("UTRP frame: %u slots (TRP needed %u)\n",
              utrp_server.frame_size(), trp_server.frame_size());

  int caught = 0;
  for (int i = 0; i < kRounds; ++i) {
    const auto c = utrp_server.issue_challenge(rng);
    const auto attack = attack::run_utrp_split_attack(
        shelf.tags(), stolen.tags(), hash::SlotHasher{}, c, budget);
    if (!utrp_server.verify(c, attack.forged).intact) ++caught;
    shelf.begin_round();
    stolen.begin_round();
    // Counters advanced on the real tags; a failed round means the server
    // cannot trust its mirror anymore — re-audit before the next round.
    std::vector<tag::Tag> everyone(shelf.tags().begin(), shelf.tags().end());
    everyone.insert(everyone.end(), stolen.tags().begin(), stolen.tags().end());
    utrp_server.resync(tag::TagSet(std::move(everyone)));
  }
  std::printf("UTRP caught the split attack in %d/%d rounds "
              "(designed for >= 95%%)\n", caught, kRounds);
  return 0;
}
