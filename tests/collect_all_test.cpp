// Tests for the collect-all baseline (dynamic framed slotted ALOHA).
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "protocol/collect_all.h"
#include "tag/tag_set.h"
#include "util/random.h"
#include "util/stats.h"

namespace {

using rfid::protocol::CollectAllConfig;
using rfid::protocol::run_collect_all;
using rfid::tag::TagSet;

TEST(CollectAll, CollectsEveryTagWhenAsked) {
  rfid::util::Rng rng(1);
  const TagSet set = TagSet::make_random(200, rng);
  const rfid::hash::SlotHasher hasher;
  const auto result = run_collect_all(set.tags(), hasher,
                                      {.stop_after_collected = 200}, rng);
  EXPECT_EQ(result.collected, 200u);
  EXPECT_GE(result.rounds, 1u);
  EXPECT_GE(result.total_slots, 200u);
}

TEST(CollectAll, StopsAtTarget) {
  rfid::util::Rng rng(2);
  const TagSet set = TagSet::make_random(300, rng);
  const rfid::hash::SlotHasher hasher;
  const auto result = run_collect_all(set.tags(), hasher,
                                      {.stop_after_collected = 250}, rng);
  EXPECT_GE(result.collected, 250u);
  EXPECT_LE(result.collected, 300u);
}

TEST(CollectAll, ZeroTargetDoesNothing) {
  rfid::util::Rng rng(3);
  const TagSet set = TagSet::make_random(10, rng);
  const rfid::hash::SlotHasher hasher;
  const auto result =
      run_collect_all(set.tags(), hasher, {.stop_after_collected = 0}, rng);
  EXPECT_EQ(result.rounds, 0u);
  EXPECT_EQ(result.total_slots, 0u);
}

TEST(CollectAll, RejectsTargetAbovepresent) {
  rfid::util::Rng rng(4);
  const TagSet set = TagSet::make_random(10, rng);
  const rfid::hash::SlotHasher hasher;
  EXPECT_THROW((void)run_collect_all(set.tags(), hasher,
                                     {.stop_after_collected = 11}, rng),
               std::invalid_argument);
}

TEST(CollectAll, SlotAccountingIsConsistent) {
  rfid::util::Rng rng(5);
  const TagSet set = TagSet::make_random(150, rng);
  const rfid::hash::SlotHasher hasher;
  const auto result = run_collect_all(set.tags(), hasher,
                                      {.stop_after_collected = 150}, rng);
  EXPECT_EQ(result.empty_slots + result.singleton_slots + result.collision_slots,
            result.total_slots);
  EXPECT_EQ(result.singleton_slots, result.collected);
}

TEST(CollectAll, TotalSlotsNearTheoreticalExpectation) {
  // With per-round f = #unidentified, the expected total is ~ e * n
  // (each round identifies ~ 1/e of the remainder).
  rfid::util::Rng rng(6);
  const TagSet set = TagSet::make_random(1000, rng);
  const rfid::hash::SlotHasher hasher;
  rfid::util::RunningStat slots;
  for (int t = 0; t < 20; ++t) {
    const auto result = run_collect_all(set.tags(), hasher,
                                        {.stop_after_collected = 1000}, rng);
    slots.add(static_cast<double>(result.total_slots));
  }
  const double expected = std::exp(1.0) * 1000.0;
  EXPECT_NEAR(slots.mean(), expected, expected * 0.15);
}

TEST(CollectAll, ToleranceSavesSlots) {
  // Stopping at n - m is cheaper than collecting everything (the long tail
  // of collisions is exactly where collect-all hurts).
  rfid::util::Rng rng(7);
  const TagSet set = TagSet::make_random(500, rng);
  const rfid::hash::SlotHasher hasher;
  rfid::util::RunningStat full;
  rfid::util::RunningStat tolerant;
  for (int t = 0; t < 20; ++t) {
    full.add(static_cast<double>(
        run_collect_all(set.tags(), hasher, {.stop_after_collected = 500}, rng)
            .total_slots));
    tolerant.add(static_cast<double>(
        run_collect_all(set.tags(), hasher, {.stop_after_collected = 470}, rng)
            .total_slots));
  }
  EXPECT_LT(tolerant.mean(), full.mean());
}

TEST(CollectAll, InitialFrameOverrideIsUsed) {
  rfid::util::Rng rng(8);
  const TagSet set = TagSet::make_random(50, rng);
  const rfid::hash::SlotHasher hasher;
  const auto result = run_collect_all(
      set.tags(), hasher,
      {.stop_after_collected = 1, .initial_frame = 4096}, rng);
  EXPECT_GE(result.total_slots, 4096u);
}

TEST(CollectAll, SingleTagIsCollectedInOneSlot) {
  rfid::util::Rng rng(9);
  const TagSet set = TagSet::make_random(1, rng);
  const rfid::hash::SlotHasher hasher;
  const auto result =
      run_collect_all(set.tags(), hasher, {.stop_after_collected = 1}, rng);
  EXPECT_EQ(result.collected, 1u);
  EXPECT_EQ(result.rounds, 1u);
  EXPECT_EQ(result.total_slots, 1u);
}

TEST(CollectAll, LossyChannelIncreasesCost) {
  rfid::util::Rng rng(10);
  const TagSet set = TagSet::make_random(300, rng);
  const rfid::hash::SlotHasher hasher;
  rfid::util::RunningStat ideal;
  rfid::util::RunningStat lossy;
  for (int t = 0; t < 10; ++t) {
    ideal.add(static_cast<double>(
        run_collect_all(set.tags(), hasher, {.stop_after_collected = 300}, rng)
            .total_slots));
    lossy.add(static_cast<double>(
        run_collect_all(
            set.tags(), hasher,
            {.stop_after_collected = 300,
             .initial_frame = 0,
             .channel = {.reply_loss_prob = 0.3, .capture_prob = 0.0}},
            rng)
            .total_slots));
  }
  EXPECT_GT(lossy.mean(), ideal.mean());
}

TEST(CollectAll, CaptureChannelStillTerminates) {
  // With capture, collided slots sometimes decode one tag; the loop must
  // still converge and never double-collect.
  rfid::util::Rng rng(11);
  const TagSet set = TagSet::make_random(200, rng);
  const rfid::hash::SlotHasher hasher;
  const auto result = run_collect_all(
      set.tags(), hasher,
      {.stop_after_collected = 200,
       .initial_frame = 0,
       .channel = {.reply_loss_prob = 0.0, .capture_prob = 0.5}},
      rng);
  EXPECT_EQ(result.collected, 200u);
}

TEST(CollectAll, ElapsedTimeUsesIdSlotCosts) {
  rfid::util::Rng rng(12);
  const TagSet set = TagSet::make_random(100, rng);
  const rfid::hash::SlotHasher hasher;
  const auto result = run_collect_all(set.tags(), hasher,
                                      {.stop_after_collected = 100}, rng);
  const rfid::radio::TimingModel timing;
  const double us = result.elapsed_us(timing);
  EXPECT_GT(us, static_cast<double>(result.collected) * timing.id_reply_slot_us);
}

}  // namespace
