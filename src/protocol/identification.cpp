#include "protocol/identification.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "estimate/cardinality.h"
#include "obs/catalog.h"
#include "protocol/tree_walk.h"
#include "tag/columnar.h"
#include "util/expect.h"

namespace rfid::protocol {
namespace {

enum class Status : std::uint8_t { kUnknown, kMissing, kPresent };

void partition_verdicts(std::span<const tag::TagId> enrolled,
                        std::span<const Status> status,
                        IdentifyResult& result) {
  for (std::size_t i = 0; i < enrolled.size(); ++i) {
    switch (status[i]) {
      case Status::kMissing: result.missing.push_back(enrolled[i]); break;
      case Status::kPresent: result.present.push_back(enrolled[i]); break;
      case Status::kUnknown: result.unresolved.push_back(enrolled[i]); break;
    }
  }
}

[[nodiscard]] std::uint32_t sized_frame(double load, double repliers) {
  const auto f = std::llround(load * std::max(repliers, 1.0));
  return static_cast<std::uint32_t>(std::max<long long>(1, f));
}

// --------------------------------------------------------- iterative ----

class IterativeProtocol final : public IdentificationProtocol {
 public:
  explicit IterativeProtocol(IdentifyConfig config)
      : IdentificationProtocol(std::move(config)) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "iterative";
  }

  [[nodiscard]] IdentifyResult identify(std::span<const tag::TagId> enrolled,
                                        std::span<const tag::Tag> present_tags,
                                        const hash::SlotHasher& hasher,
                                        util::Rng& rng) const override;
};

IdentifyResult IterativeProtocol::identify(std::span<const tag::TagId> enrolled,
                                           std::span<const tag::Tag> present_tags,
                                           const hash::SlotHasher& hasher,
                                           util::Rng& rng) const {
  RFID_EXPECT(!enrolled.empty(), "nothing enrolled");

  IdentifyResult result;
  const std::uint32_t confirmations =
      required_confirmations(config_, enrolled.size());
  result.confirmations_required = confirmations;

  const std::size_t n = enrolled.size();
  std::vector<Status> status(n, Status::kUnknown);
  std::vector<std::uint32_t> streak(n, 0);
  std::size_t unknown_count = n;
  std::size_t candidate_count = n;  // everyone not proven missing

  std::vector<std::uint64_t> replier_words;
  replier_words.reserve(present_tags.size());
  for (const tag::Tag& t : present_tags) {
    replier_words.push_back(t.id().slot_word());
  }

  std::vector<std::uint32_t> cand_idx;
  std::vector<std::uint64_t> cand_words;
  std::vector<std::uint32_t> cand_slots;
  std::vector<std::uint32_t> replier_slots(replier_words.size());
  std::vector<std::uint32_t> occupancy;
  std::vector<std::uint32_t> mappers;
  std::vector<std::uint8_t> observed;

  while (unknown_count > 0 && result.rounds < config_.max_rounds) {
    ++result.rounds;
    // Frames are sized to the tags that still REPLY — proven-present tags
    // cannot be silenced (the reader has no per-tag addressing without
    // IDs), so they keep occupying slots and would swamp a frame sized only
    // to the unknowns.
    const std::uint32_t f =
        sized_frame(config_.frame_load, static_cast<double>(candidate_count));
    result.total_slots += f;
    const std::uint64_t r = rng();

    // What the reader observes: every physically present tag replies in its
    // slot (tags have no notion of their classification status).
    tag::bulk_trp_slots(hasher, replier_words, r, f, replier_slots);
    occupancy.assign(f, 0);
    for (const std::uint32_t s : replier_slots) ++occupancy[s];

    observed.assign(f, 0);
    std::uint64_t empties = 0;
    if (config_.channel.ideal()) {
      for (std::uint32_t s = 0; s < f; ++s) {
        observed[s] = occupancy[s] > 0 ? 1 : 0;
        if (observed[s] == 0) ++empties;
      }
    } else {
      for (std::uint32_t s = 0; s < f; ++s) {
        observed[s] = radio::occupied(radio::resolve_slot(
                          occupancy[s], config_.channel, rng))
                          ? 1
                          : 0;
        if (observed[s] == 0) ++empties;
      }
    }
    result.frame_empty_slots += empties;
    result.frame_reply_slots += f - empties;

    // What the server expects: slots of every tag not yet proven missing
    // (proven-missing tags cannot reply; proven-present ones still do and
    // can mask an unknown tag sharing their slot).
    cand_idx.clear();
    cand_words.clear();
    for (std::uint32_t i = 0; i < n; ++i) {
      if (status[i] == Status::kMissing) continue;
      cand_idx.push_back(i);
      cand_words.push_back(enrolled[i].slot_word());
    }
    cand_slots.resize(cand_words.size());
    tag::bulk_trp_slots(hasher, cand_words, r, f, cand_slots);
    mappers.assign(f, 0);
    for (const std::uint32_t s : cand_slots) ++mappers[s];

    if (result.rounds == 1) {
      const auto est = estimate::estimate_cardinality(empties, f);
      result.estimated_missing = std::max(
          0.0, static_cast<double>(candidate_count) -
                   (est.saturated ? static_cast<double>(candidate_count)
                                  : est.estimate));
    }

    for (std::size_t k = 0; k < cand_idx.size(); ++k) {
      const std::uint32_t i = cand_idx[k];
      if (status[i] != Status::kUnknown) continue;
      const std::uint32_t s = cand_slots[k];
      if (!observed[s]) {
        // Nobody replied where this tag must have: one unit of absence
        // evidence. A streak of `confirmations` proves it absent.
        if (++streak[i] >= confirmations) {
          status[i] = Status::kMissing;
          --unknown_count;
          --candidate_count;
        }
      } else {
        streak[i] = 0;  // an occupied slot is consistent with presence
        if (mappers[s] == 1) {
          // Occupied, and this tag is the only possible replier: present.
          status[i] = Status::kPresent;
          --unknown_count;
        }
      }
    }
  }

  partition_verdicts(enrolled, status, result);
  return result;
}

// ------------------------------------------------------- filter-first ----

class FilterFirstProtocol final : public IdentificationProtocol {
 public:
  explicit FilterFirstProtocol(IdentifyConfig config)
      : IdentificationProtocol(std::move(config)) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "filter_first";
  }

  [[nodiscard]] IdentifyResult identify(std::span<const tag::TagId> enrolled,
                                        std::span<const tag::Tag> present_tags,
                                        const hash::SlotHasher& hasher,
                                        util::Rng& rng) const override;
};

IdentifyResult FilterFirstProtocol::identify(
    std::span<const tag::TagId> enrolled,
    std::span<const tag::Tag> present_tags, const hash::SlotHasher& hasher,
    util::Rng& rng) const {
  RFID_EXPECT(!enrolled.empty(), "nothing enrolled");

  IdentifyResult result;
  const std::uint32_t confirmations =
      required_confirmations(config_, enrolled.size());
  result.confirmations_required = confirmations;

  const std::size_t n = enrolled.size();
  std::vector<std::uint64_t> words(n);
  for (std::size_t i = 0; i < n; ++i) words[i] = enrolled[i].slot_word();
  std::vector<Status> status(n, Status::kUnknown);
  std::vector<std::uint32_t> streak(n, 0);
  std::size_t unknown = n;

  // Tags still answering: ACK-silenced tags drop out for the campaign.
  std::vector<std::uint64_t> replier_words;
  replier_words.reserve(present_tags.size());
  for (const tag::Tag& t : present_tags) {
    replier_words.push_back(t.id().slot_word());
  }

  double est_repliers = -1.0;  // no estimate before the first frame

  std::vector<std::uint32_t> active_idx;
  std::vector<std::uint64_t> active_words;
  std::vector<std::uint32_t> active_slots;
  std::vector<std::uint32_t> replier_slots;
  std::vector<std::uint32_t> occupancy;
  std::vector<std::uint32_t> mappers;
  std::vector<std::uint8_t> observed;
  std::vector<std::uint8_t> acked;
  std::vector<std::uint64_t> split_proven_words;

  while (unknown > 0 && result.rounds < config_.max_rounds) {
    ++result.rounds;
    // Only the unknowns map into the frame on either side of the link:
    // proven-missing tags cannot reply, proven-present ones were silenced
    // by an ACK filter the round they were proven.
    active_idx.clear();
    active_words.clear();
    for (std::uint32_t i = 0; i < n; ++i) {
      if (status[i] != Status::kUnknown) continue;
      active_idx.push_back(i);
      active_words.push_back(words[i]);
    }

    // Size the frame by the ESTIMATED repliers (zero-estimator on the
    // previous frame), not the candidate count: when most candidates are
    // already stolen, estimate-sized frames collapse instead of burning
    // population-sized runs of empty slots. The +2σ keeps undersizing —
    // which would starve sole-replier proofs — unlikely.
    double sized = static_cast<double>(active_idx.size());
    if (est_repliers >= 0.0) sized = std::min(sized, est_repliers);
    const std::uint32_t f = sized_frame(config_.frame_load, sized);
    result.total_slots += f;
    const std::uint64_t r = rng();

    active_slots.resize(active_words.size());
    tag::bulk_trp_slots(hasher, active_words, r, f, active_slots);
    replier_slots.resize(replier_words.size());
    tag::bulk_trp_slots(hasher, replier_words, r, f, replier_slots);

    occupancy.assign(f, 0);
    for (const std::uint32_t s : replier_slots) ++occupancy[s];
    mappers.assign(f, 0);
    for (const std::uint32_t s : active_slots) ++mappers[s];

    observed.assign(f, 0);
    std::uint64_t empties = 0;
    if (config_.channel.ideal()) {
      for (std::uint32_t s = 0; s < f; ++s) {
        observed[s] = occupancy[s] > 0 ? 1 : 0;
        if (observed[s] == 0) ++empties;
      }
    } else {
      for (std::uint32_t s = 0; s < f; ++s) {
        observed[s] = radio::occupied(radio::resolve_slot(
                          occupancy[s], config_.channel, rng))
                          ? 1
                          : 0;
        if (observed[s] == 0) ++empties;
      }
    }
    result.frame_empty_slots += empties;
    result.frame_reply_slots += f - empties;

    // Classify on the frame alone. The ACK bitmap covers ONLY sole-mapper
    // slots: ACKing a collision slot would silence unproven tags sharing it
    // and turn their silence into false accusations later.
    std::size_t newly_present = 0;
    acked.assign(f, 0);
    for (std::size_t k = 0; k < active_idx.size(); ++k) {
      const std::uint32_t i = active_idx[k];
      const std::uint32_t s = active_slots[k];
      if (!observed[s]) {
        if (++streak[i] >= confirmations) {
          status[i] = Status::kMissing;
          --unknown;
        }
      } else {
        streak[i] = 0;
        if (mappers[s] == 1) {
          status[i] = Status::kPresent;
          --unknown;
          ++newly_present;
          acked[s] = 1;
        }
      }
    }

    // Tree-split the ambiguous slots in-round once few unknowns remain:
    // a directed prefix walk separates each collision instead of paying an
    // O(log n) tail of ever-smaller re-framing rounds.
    split_proven_words.clear();
    if (unknown > 0 && unknown <= config_.tree_split_below) {
      std::map<std::uint32_t, std::vector<std::uint32_t>> ambiguous;
      for (std::size_t k = 0; k < active_idx.size(); ++k) {
        if (status[active_idx[k]] != Status::kUnknown) continue;
        const std::uint32_t s = active_slots[k];
        if (observed[s] && mappers[s] >= 2) {
          ambiguous[s].push_back(static_cast<std::uint32_t>(k));
        }
      }
      std::map<std::uint32_t, std::vector<std::uint64_t>> slot_repliers;
      if (!ambiguous.empty()) {
        for (std::size_t j = 0; j < replier_words.size(); ++j) {
          const auto it = ambiguous.find(replier_slots[j]);
          if (it != ambiguous.end()) {
            slot_repliers[replier_slots[j]].push_back(replier_words[j]);
          }
        }
      }
      std::vector<std::uint64_t> cand_w;
      for (const auto& [s, ks] : ambiguous) {
        cand_w.clear();
        for (const std::uint32_t k : ks) cand_w.push_back(active_words[k]);
        const auto reps = slot_repliers.find(s);
        const auto split = split_collision_slot(
            cand_w,
            reps == slot_repliers.end()
                ? std::span<const std::uint64_t>{}
                : std::span<const std::uint64_t>(reps->second),
            config_.channel, rng);
        result.tree_queries += split.queries;
        result.tree_empty_queries += split.empty_queries;
        result.total_slots += split.queries;
        for (std::size_t c = 0; c < ks.size(); ++c) {
          const std::uint32_t i = active_idx[ks[c]];
          if (split.proven_present[c]) {
            status[i] = Status::kPresent;
            streak[i] = 0;
            --unknown;
            ++newly_present;
            split_proven_words.push_back(words[i]);
          } else if (split.observed_absent[c]) {
            // At most one unit of absence evidence per tag per round, so
            // the consecutive-round soundness bound still applies.
            if (++streak[i] >= confirmations) {
              status[i] = Status::kMissing;
              --unknown;
            }
          }
        }
      }
    }

    // ACK filter: one broadcast bit per slot; tags that answered in an
    // ACKed (sole-mapper) slot go silent, and a tag proven by a singleton
    // tree reply is ACKed at its prefix (word match).
    if (newly_present > 0) {
      result.filter_bits += f;
      std::sort(split_proven_words.begin(), split_proven_words.end());
      std::size_t kept = 0;
      for (std::size_t j = 0; j < replier_words.size(); ++j) {
        const bool silence =
            acked[replier_slots[j]] ||
            std::binary_search(split_proven_words.begin(),
                               split_proven_words.end(), replier_words[j]);
        if (!silence) {
          replier_words[kept] = replier_words[j];
          ++kept;
        }
      }
      replier_words.resize(kept);
    }

    // Update the replier estimate for the next frame's sizing.
    const auto est = estimate::estimate_cardinality(empties, f);
    if (result.rounds == 1) {
      result.estimated_missing = std::max(
          0.0, static_cast<double>(n) -
                   (est.saturated ? static_cast<double>(n) : est.estimate));
    }
    if (est.saturated) {
      est_repliers = -1.0;  // no information: fall back to the unknown count
    } else {
      est_repliers =
          std::max(0.0, est.estimate + 2.0 * est.std_error -
                            static_cast<double>(newly_present));
    }
  }

  partition_verdicts(enrolled, status, result);
  return result;
}

}  // namespace

std::string_view to_string(IdentifyProtocolKind kind) noexcept {
  switch (kind) {
    case IdentifyProtocolKind::kIterative: return "iterative";
    case IdentifyProtocolKind::kFilterFirst: return "filter_first";
  }
  return "unknown";
}

std::uint32_t required_confirmations(const IdentifyConfig& config,
                                     std::size_t enrolled_count) noexcept {
  if (config.confirmations > 0) return config.confirmations;
  const double loss = config.channel.reply_loss_prob;
  if (loss <= 0.0) return 1;
  // P(false accusation of one present tag) <= max_rounds · loss^C (union
  // bound over streak start positions); demand the campaign-wide bound
  // n · max_rounds · loss^C <= accusation_error.
  const double n = static_cast<double>(std::max<std::size_t>(1, enrolled_count));
  const double rounds =
      static_cast<double>(std::max<std::uint32_t>(1, config.max_rounds));
  const double target = config.accusation_error / (n * rounds);
  const double c = std::ceil(std::log(target) / std::log(loss));
  if (!(c >= 1.0)) return 1;
  return static_cast<std::uint32_t>(std::min(c, 1e6));
}

IdentificationProtocol::IdentificationProtocol(IdentifyConfig config)
    : config_(std::move(config)) {
  RFID_EXPECT(config_.frame_load > 0.0, "frame load must be positive");
  RFID_EXPECT(config_.max_rounds >= 1, "need at least one round");
  RFID_EXPECT(config_.accusation_error > 0.0 && config_.accusation_error < 1.0,
              "accusation error budget must be in (0, 1)");
  RFID_EXPECT(config_.channel.reply_loss_prob < 1.0,
              "a channel that loses every reply cannot identify anything");
}

std::unique_ptr<IdentificationProtocol> make_identification_protocol(
    IdentifyProtocolKind kind, IdentifyConfig config) {
  switch (kind) {
    case IdentifyProtocolKind::kIterative:
      return std::make_unique<IterativeProtocol>(std::move(config));
    case IdentifyProtocolKind::kFilterFirst:
      return std::make_unique<FilterFirstProtocol>(std::move(config));
  }
  RFID_EXPECT(false, "unknown identification protocol kind");
  return nullptr;
}

void record_identify_metrics(obs::MetricsRegistry& registry,
                             std::string_view protocol,
                             const IdentifyResult& result) {
  obs::catalog::identify_campaigns_total(
      registry, protocol, result.unresolved.empty() ? "resolved" : "capped")
      .inc();
  obs::catalog::identify_rounds_total(registry, protocol).inc(result.rounds);
  obs::catalog::identify_slots_total(registry, protocol, "frame")
      .inc(result.frame_empty_slots + result.frame_reply_slots);
  obs::catalog::identify_slots_total(registry, protocol, "tree")
      .inc(result.tree_queries);
  obs::catalog::identify_filter_bits_total(registry).inc(result.filter_bits);
  obs::catalog::identify_tags_total(registry, "missing")
      .inc(result.missing.size());
  obs::catalog::identify_tags_total(registry, "present")
      .inc(result.present.size());
  obs::catalog::identify_tags_total(registry, "unresolved")
      .inc(result.unresolved.size());
}

}  // namespace rfid::protocol
