// Figure 4 — "Comparing collect all versus TRP" (4 panels: m = 5/10/20/30).
//
// y-axis: number of slots. collect-all is simulated with the Lee et al.
// frame sizing (first round f = n, then f = #remaining), stopping once
// n − m IDs are collected; the reported cost is the mean total slot count
// over --trials runs. TRP's cost is the deterministic Eq. (2) frame size.
//
// Expected shape (paper): both grow linearly in n; TRP uses fewer slots,
// with the gap widening as n and m grow.
#include <cstdint>

#include "bench_common.h"
#include "math/frame_optimizer.h"
#include "protocol/collect_all.h"
#include "sim/trial_runner.h"
#include "tag/tag_set.h"
#include "util/table.h"

namespace {

using namespace rfid;

double mean_collect_all_slots(std::uint64_t n, std::uint64_t m,
                              const bench::FigureOptions& opt,
                              const sim::TrialRunner& runner) {
  const hash::SlotHasher hasher;
  const auto stats = runner.run_metric(
      opt.trials, util::derive_seed(opt.seed, n, m),
      [&](std::uint64_t, util::Rng& rng) {
        const tag::TagSet set = tag::TagSet::make_random(n, rng);
        const auto result = protocol::run_collect_all(
            set.tags(), hasher, {.stop_after_collected = n - m}, rng);
        return static_cast<double>(result.total_slots);
      });
  return stats.mean();
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_figure_options(argc, argv);
  const sim::TrialRunner runner(opt.threads);

  bench::banner(
      "Figure 4: collect-all vs TRP, slots to monitor with tolerance m "
      "(alpha = " +
      util::format_double(opt.alpha, 2) + ")");

  for (const std::uint64_t m : bench::tolerance_panels()) {
    util::Table table({"n", "collect_all_slots", "trp_slots", "ratio"});
    std::vector<double> xs;
    util::ChartSeries baseline_series{"collect all", {}, 'o'};
    util::ChartSeries trp_series{"TRP", {}, '*'};
    for (const std::uint64_t n : bench::tag_count_sweep(opt)) {
      if (m + 1 > n) continue;
      const double baseline = mean_collect_all_slots(n, m, opt, runner);
      const auto plan = math::optimize_trp_frame(n, m, opt.alpha, opt.model);
      table.begin_row();
      table.add_cell(static_cast<long long>(n));
      table.add_cell(baseline, 1);
      table.add_cell(static_cast<long long>(plan.frame_size));
      table.add_cell(baseline / plan.frame_size, 3);
      xs.push_back(static_cast<double>(n));
      baseline_series.ys.push_back(baseline);
      trp_series.ys.push_back(plan.frame_size);
    }
    std::cout << "--- Tolerate m=" << m << " missing tags ---\n";
    bench::emit(table, opt);
    bench::maybe_plot(opt, xs, {baseline_series, trp_series},
                      "slots vs n (m=" + std::to_string(m) + ")");
  }
  return 0;
}
