#include "service/messages.h"

#include <stdexcept>

#include "wire/codec.h"

namespace rfid::service {

namespace {

using wire::Decoder;
using wire::Encoder;

void put_bool(Encoder& enc, bool v) {
  enc.put_u8(v ? 1 : 0);
}

bool get_bool(Decoder& dec) { return dec.get_u8() != 0; }

void put_tag_ids(Encoder& enc, const std::vector<tag::TagId>& ids) {
  enc.put_u32(static_cast<std::uint32_t>(ids.size()));
  for (const tag::TagId& id : ids) {
    enc.put_u32(id.hi());
    enc.put_u64(id.lo());
  }
}

std::vector<tag::TagId> get_tag_ids(Decoder& dec) {
  const std::uint32_t count = dec.get_u32();
  // 12 encoded bytes per id: a forged count dies here, before reserve().
  if (count > dec.remaining() / 12) {
    throw std::invalid_argument("tag id count exceeds payload");
  }
  std::vector<tag::TagId> ids;
  ids.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t hi = dec.get_u32();
    const std::uint64_t lo = dec.get_u64();
    ids.emplace_back(hi, lo);
  }
  return ids;
}

void put_u64s(Encoder& enc, const std::vector<std::uint64_t>& values) {
  enc.put_u32(static_cast<std::uint32_t>(values.size()));
  for (const std::uint64_t v : values) enc.put_u64(v);
}

std::vector<std::uint64_t> get_u64s(Decoder& dec) {
  const std::uint32_t count = dec.get_u32();
  if (count > dec.remaining() / 8) {
    throw std::invalid_argument("u64 count exceeds payload");
  }
  std::vector<std::uint64_t> values;
  values.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) values.push_back(dec.get_u64());
  return values;
}

}  // namespace

std::vector<std::byte> encode(const HelloRequest& m) {
  Encoder enc;
  enc.put_u32(m.version);
  enc.put_string(m.tenant);
  return std::move(enc).take();
}

HelloRequest decode_hello(std::span<const std::byte> payload) {
  Decoder dec(payload);
  HelloRequest m;
  m.version = dec.get_u32();
  m.tenant = dec.get_string();
  dec.expect_exhausted();
  return m;
}

std::vector<std::byte> encode(const HelloOk& m) {
  Encoder enc;
  enc.put_u32(m.version);
  enc.put_u64(m.session_id);
  enc.put_u32(m.max_frame_bytes);
  enc.put_u64(m.token_capacity);
  enc.put_u64(m.max_inflight_per_tenant);
  return std::move(enc).take();
}

HelloOk decode_hello_ok(std::span<const std::byte> payload) {
  Decoder dec(payload);
  HelloOk m;
  m.version = dec.get_u32();
  m.session_id = dec.get_u64();
  m.max_frame_bytes = dec.get_u32();
  m.token_capacity = dec.get_u64();
  m.max_inflight_per_tenant = dec.get_u64();
  dec.expect_exhausted();
  return m;
}

std::vector<std::byte> encode(const EnrollRequest& m) {
  Encoder enc;
  enc.put_string(m.inventory);
  enc.put_u8(m.protocol);
  enc.put_u64(m.tolerance);
  enc.put_f64(m.alpha);
  enc.put_u64(m.zone_capacity);
  enc.put_u64(m.rounds);
  put_tag_ids(enc, m.tags);
  return std::move(enc).take();
}

EnrollRequest decode_enroll(std::span<const std::byte> payload) {
  Decoder dec(payload);
  EnrollRequest m;
  m.inventory = dec.get_string();
  m.protocol = dec.get_u8();
  m.tolerance = dec.get_u64();
  m.alpha = dec.get_f64();
  m.zone_capacity = dec.get_u64();
  m.rounds = dec.get_u64();
  m.tags = get_tag_ids(dec);
  dec.expect_exhausted();
  return m;
}

std::vector<std::byte> encode(const EnrollOk& m) {
  Encoder enc;
  enc.put_string(m.inventory);
  enc.put_u64(m.tags);
  enc.put_u64(m.zones);
  enc.put_u64(m.total_slots);
  return std::move(enc).take();
}

EnrollOk decode_enroll_ok(std::span<const std::byte> payload) {
  Decoder dec(payload);
  EnrollOk m;
  m.inventory = dec.get_string();
  m.tags = dec.get_u64();
  m.zones = dec.get_u64();
  m.total_slots = dec.get_u64();
  dec.expect_exhausted();
  return m;
}

std::vector<std::byte> encode(const StartRunRequest& m) {
  Encoder enc;
  enc.put_string(m.inventory);
  enc.put_u64(m.seed);
  put_bool(enc, m.identify);
  put_u64s(enc, m.stolen);
  return std::move(enc).take();
}

StartRunRequest decode_start_run(std::span<const std::byte> payload) {
  Decoder dec(payload);
  StartRunRequest m;
  m.inventory = dec.get_string();
  m.seed = dec.get_u64();
  m.identify = get_bool(dec);
  m.stolen = get_u64s(dec);
  dec.expect_exhausted();
  return m;
}

std::vector<std::byte> encode(const StartWatchRequest& m) {
  Encoder enc;
  enc.put_string(m.inventory);
  enc.put_u64(m.seed);
  enc.put_u64(m.epochs);
  put_bool(enc, m.identify);
  enc.put_u64(m.steal_epoch);
  enc.put_u64(m.steal);
  enc.put_u64(m.steal_from);
  return std::move(enc).take();
}

StartWatchRequest decode_start_watch(std::span<const std::byte> payload) {
  Decoder dec(payload);
  StartWatchRequest m;
  m.inventory = dec.get_string();
  m.seed = dec.get_u64();
  m.epochs = dec.get_u64();
  m.identify = get_bool(dec);
  m.steal_epoch = dec.get_u64();
  m.steal = dec.get_u64();
  m.steal_from = dec.get_u64();
  dec.expect_exhausted();
  return m;
}

std::vector<std::byte> encode(const RunAdmitted& m) {
  Encoder enc;
  enc.put_u64(m.run_id);
  enc.put_u8(m.admission);
  enc.put_u64(m.queue_depth);
  return std::move(enc).take();
}

RunAdmitted decode_run_admitted(std::span<const std::byte> payload) {
  Decoder dec(payload);
  RunAdmitted m;
  m.run_id = dec.get_u64();
  m.admission = dec.get_u8();
  m.queue_depth = dec.get_u64();
  dec.expect_exhausted();
  return m;
}

std::vector<std::byte> encode(const Backpressure& m) {
  Encoder enc;
  enc.put_u64(m.retry_after_ms);
  enc.put_string(m.reason);
  return std::move(enc).take();
}

Backpressure decode_backpressure(std::span<const std::byte> payload) {
  Decoder dec(payload);
  Backpressure m;
  m.retry_after_ms = dec.get_u64();
  m.reason = dec.get_string();
  dec.expect_exhausted();
  return m;
}

std::vector<std::byte> encode(const RunVerdictMsg& m) {
  Encoder enc;
  enc.put_u64(m.run_id);
  enc.put_string(m.inventory);
  enc.put_u8(m.verdict);
  enc.put_u64(m.zones);
  enc.put_u64(m.zones_violated);
  enc.put_u64(m.attempts);
  enc.put_u64(m.tags_named);
  put_bool(enc, m.aborted);
  put_tag_ids(enc, m.missing);
  return std::move(enc).take();
}

RunVerdictMsg decode_run_verdict(std::span<const std::byte> payload) {
  Decoder dec(payload);
  RunVerdictMsg m;
  m.run_id = dec.get_u64();
  m.inventory = dec.get_string();
  m.verdict = dec.get_u8();
  m.zones = dec.get_u64();
  m.zones_violated = dec.get_u64();
  m.attempts = dec.get_u64();
  m.tags_named = dec.get_u64();
  m.aborted = get_bool(dec);
  m.missing = get_tag_ids(dec);
  dec.expect_exhausted();
  return m;
}

std::vector<std::byte> encode(const RunAlertMsg& m) {
  Encoder enc;
  enc.put_u64(m.run_id);
  enc.put_string(m.kind);
  enc.put_string(m.inventory);
  enc.put_u64(m.zone);
  enc.put_string(m.detail);
  return std::move(enc).take();
}

RunAlertMsg decode_run_alert(std::span<const std::byte> payload) {
  Decoder dec(payload);
  RunAlertMsg m;
  m.run_id = dec.get_u64();
  m.kind = dec.get_string();
  m.inventory = dec.get_string();
  m.zone = dec.get_u64();
  m.detail = dec.get_string();
  dec.expect_exhausted();
  return m;
}

std::vector<std::byte> encode(const WatchDone& m) {
  Encoder enc;
  enc.put_u64(m.run_id);
  enc.put_u64(m.epochs_completed);
  enc.put_u64(m.alerts);
  put_bool(enc, m.gave_up);
  return std::move(enc).take();
}

WatchDone decode_watch_done(std::span<const std::byte> payload) {
  Decoder dec(payload);
  WatchDone m;
  m.run_id = dec.get_u64();
  m.epochs_completed = dec.get_u64();
  m.alerts = dec.get_u64();
  m.gave_up = get_bool(dec);
  dec.expect_exhausted();
  return m;
}

std::vector<std::byte> encode(const SubscribeOk& m) {
  Encoder enc;
  enc.put_u64(m.backlog);
  return std::move(enc).take();
}

SubscribeOk decode_subscribe_ok(std::span<const std::byte> payload) {
  Decoder dec(payload);
  SubscribeOk m;
  m.backlog = dec.get_u64();
  dec.expect_exhausted();
  return m;
}

std::vector<std::byte> encode(const TenantAlert& m) {
  Encoder enc;
  enc.put_u64(m.sequence);
  enc.put_string(m.kind);
  enc.put_u64(m.run_id);
  enc.put_u64(m.epoch);
  enc.put_u64(m.zone);
  enc.put_string(m.detail);
  put_tag_ids(enc, m.missing);
  return std::move(enc).take();
}

TenantAlert decode_tenant_alert(std::span<const std::byte> payload) {
  Decoder dec(payload);
  TenantAlert m;
  m.sequence = dec.get_u64();
  m.kind = dec.get_string();
  m.run_id = dec.get_u64();
  m.epoch = dec.get_u64();
  m.zone = dec.get_u64();
  m.detail = dec.get_string();
  m.missing = get_tag_ids(dec);
  dec.expect_exhausted();
  return m;
}

std::vector<std::byte> encode(const PingMsg& m) {
  Encoder enc;
  enc.put_u64(m.nonce);
  return std::move(enc).take();
}

PingMsg decode_ping(std::span<const std::byte> payload) {
  Decoder dec(payload);
  PingMsg m;
  m.nonce = dec.get_u64();
  dec.expect_exhausted();
  return m;
}

std::vector<std::byte> encode(const ErrorMsg& m) {
  Encoder enc;
  enc.put_u32(static_cast<std::uint32_t>(m.code));
  enc.put_string(m.message);
  return std::move(enc).take();
}

ErrorMsg decode_error(std::span<const std::byte> payload) {
  Decoder dec(payload);
  ErrorMsg m;
  m.code = static_cast<ErrorCode>(dec.get_u32());
  m.message = dec.get_string();
  dec.expect_exhausted();
  return m;
}

std::vector<std::byte> encode(const ShutdownMsg& m) {
  Encoder enc;
  enc.put_u64(m.drain_ms);
  return std::move(enc).take();
}

ShutdownMsg decode_shutdown(std::span<const std::byte> payload) {
  Decoder dec(payload);
  ShutdownMsg m;
  m.drain_ms = dec.get_u64();
  dec.expect_exhausted();
  return m;
}

}  // namespace rfid::service
