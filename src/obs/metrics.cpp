#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/expect.h"

namespace rfid::obs {

namespace {

[[nodiscard]] bool valid_name_char(char c, bool first, bool allow_colon) {
  const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
  const bool digit = c >= '0' && c <= '9';
  if (alpha || c == '_' || (allow_colon && c == ':')) return true;
  return digit && !first;
}

void validate_name(std::string_view name, bool allow_colon,
                   std::string_view what) {
  RFID_EXPECT(!name.empty(), std::string(what) + " must be non-empty");
  for (std::size_t i = 0; i < name.size(); ++i) {
    RFID_EXPECT(valid_name_char(name[i], i == 0, allow_colon),
                std::string(what) + " '" + std::string(name) +
                    "' violates [a-zA-Z_:][a-zA-Z0-9_:]*");
  }
}

[[nodiscard]] std::vector<std::string> validated_labels(
    std::initializer_list<std::string_view> labels) {
  std::vector<std::string> names;
  names.reserve(labels.size());
  for (const std::string_view label : labels) {
    validate_name(label, /*allow_colon=*/false, "label name");
    RFID_EXPECT(std::find(names.begin(), names.end(), label) == names.end(),
                "duplicate label name '" + std::string(label) + "'");
    names.emplace_back(label);
  }
  return names;
}

/// Shared family-resolution body: look up `name` in `own` (must match
/// `labels` if found), reject cross-type collisions with `other_a/other_b`,
/// create otherwise. `matches` performs the type-specific compatibility
/// check (histogram bounds); `make` builds a new family.
template <typename Map, typename MapB, typename MapC, typename Matches,
          typename Make>
auto& resolve_family(std::string_view name, const Map& own,
                     const MapB& other_a, const MapC& other_b,
                     const Matches& matches, const Make& make, Map& own_mut) {
  validate_name(name, /*allow_colon=*/true, "metric name");
  if (const auto it = own.find(name); it != own.end()) {
    RFID_EXPECT(matches(*it->second),
                "metric '" + std::string(name) +
                    "' re-registered with different labels or buckets");
    return *it->second;
  }
  RFID_EXPECT(!other_a.contains(name) && !other_b.contains(name),
              "metric '" + std::string(name) +
                  "' already registered as a different type");
  return *own_mut.emplace(std::string(name), make()).first->second;
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  RFID_EXPECT(!bounds_.empty(), "histogram needs at least one bucket bound");
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    RFID_EXPECT(std::isfinite(bounds_[i]), "bucket bounds must be finite");
    RFID_EXPECT(i == 0 || bounds_[i - 1] < bounds_[i],
                "bucket bounds must be strictly increasing");
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
}

std::vector<double> Histogram::exponential_bounds(double start, double factor,
                                                  std::size_t count) {
  RFID_EXPECT(start > 0.0 && factor > 1.0 && count >= 1,
              "need start > 0, factor > 1, count >= 1");
  std::vector<double> bounds;
  bounds.reserve(count);
  double b = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

std::vector<double> Histogram::hdr_bounds(double min_value, double max_value,
                                          unsigned sub_buckets_per_octave) {
  RFID_EXPECT(min_value > 0.0 && max_value > min_value,
              "need 0 < min_value < max_value");
  RFID_EXPECT(sub_buckets_per_octave >= 1, "need at least one sub-bucket");
  std::vector<double> bounds;
  for (double octave = min_value; octave < max_value; octave *= 2.0) {
    const double width = octave / sub_buckets_per_octave;
    for (unsigned s = 1; s <= sub_buckets_per_octave; ++s) {
      const double bound = octave + width * s;
      bounds.push_back(bound);
      if (bound >= max_value) return bounds;
    }
    RFID_EXPECT(bounds.size() <= 1u << 20,
                "hdr bounds would exceed a million buckets");
  }
  return bounds;
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t old = sum_bits_.load(std::memory_order_relaxed);
  while (!sum_bits_.compare_exchange_weak(
      old, std::bit_cast<std::uint64_t>(std::bit_cast<double>(old) + v),
      std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::bucket_count(std::size_t index) const {
  RFID_EXPECT(index <= bounds_.size(), "bucket index out of range");
  return buckets_[index].load(std::memory_order_relaxed);
}

double Histogram::quantile(double q) const {
  RFID_EXPECT(q >= 0.0 && q <= 1.0, "quantile must lie in [0, 1]");
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  // Target rank (1-based): the smallest observation index covering q.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(total))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    const std::uint64_t in_bucket =
        buckets_[i].load(std::memory_order_relaxed);
    if (cumulative + in_bucket >= rank) {
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = bounds_[i];
      const double position = static_cast<double>(rank - cumulative) /
                              static_cast<double>(in_bucket);
      return lo + position * (hi - lo);
    }
    cumulative += in_bucket;
  }
  return std::numeric_limits<double>::infinity();  // overflow bucket
}

CounterFamily& MetricsRegistry::counter_family(
    std::string_view name, std::string_view help,
    std::initializer_list<std::string_view> labels) {
  std::vector<std::string> names = validated_labels(labels);
  const std::lock_guard<std::mutex> lock(mu_);
  return resolve_family(
      name, counters_, gauges_, histograms_,
      [&](const CounterFamily& f) { return f.label_names() == names; },
      [&] {
        return std::unique_ptr<CounterFamily>(new CounterFamily(
            std::string(name), std::string(help), std::move(names)));
      },
      counters_);
}

GaugeFamily& MetricsRegistry::gauge_family(
    std::string_view name, std::string_view help,
    std::initializer_list<std::string_view> labels) {
  std::vector<std::string> names = validated_labels(labels);
  const std::lock_guard<std::mutex> lock(mu_);
  return resolve_family(
      name, gauges_, counters_, histograms_,
      [&](const GaugeFamily& f) { return f.label_names() == names; },
      [&] {
        return std::unique_ptr<GaugeFamily>(new GaugeFamily(
            std::string(name), std::string(help), std::move(names)));
      },
      gauges_);
}

HistogramFamily& MetricsRegistry::histogram_family(
    std::string_view name, std::string_view help,
    std::initializer_list<std::string_view> labels,
    std::vector<double> upper_bounds) {
  std::vector<std::string> names = validated_labels(labels);
  const std::lock_guard<std::mutex> lock(mu_);
  return resolve_family(
      name, histograms_, counters_, gauges_,
      [&](const HistogramFamily& f) {
        return f.label_names() == names && f.upper_bounds() == upper_bounds;
      },
      [&] {
        return std::unique_ptr<HistogramFamily>(
            new HistogramFamily(std::string(name), std::string(help),
                                std::move(names), std::move(upper_bounds)));
      },
      histograms_);
}

Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, family] : counters_) {
    Snapshot::Family out;
    out.name = name;
    out.help = family->help();
    out.kind = Snapshot::Kind::kCounter;
    out.label_names = family->label_names();
    family->for_each([&](const std::vector<std::string>& labels,
                         const Counter& counter) {
      out.series.push_back(Snapshot::Series{
          labels, static_cast<double>(counter.value()), {}, 0, 0.0});
    });
    snap.families.push_back(std::move(out));
  }
  for (const auto& [name, family] : gauges_) {
    Snapshot::Family out;
    out.name = name;
    out.help = family->help();
    out.kind = Snapshot::Kind::kGauge;
    out.label_names = family->label_names();
    family->for_each(
        [&](const std::vector<std::string>& labels, const Gauge& gauge) {
          out.series.push_back(
              Snapshot::Series{labels, gauge.value(), {}, 0, 0.0});
        });
    snap.families.push_back(std::move(out));
  }
  for (const auto& [name, family] : histograms_) {
    Snapshot::Family out;
    out.name = name;
    out.help = family->help();
    out.kind = Snapshot::Kind::kHistogram;
    out.label_names = family->label_names();
    out.upper_bounds = family->upper_bounds();
    family->for_each([&](const std::vector<std::string>& labels,
                         const Histogram& histogram) {
      Snapshot::Series series;
      series.label_values = labels;
      series.bucket_counts.reserve(histogram.upper_bounds().size() + 1);
      for (std::size_t i = 0; i <= histogram.upper_bounds().size(); ++i) {
        series.bucket_counts.push_back(histogram.bucket_count(i));
      }
      series.count = histogram.count();
      series.sum = histogram.sum();
      out.series.push_back(std::move(series));
    });
    snap.families.push_back(std::move(out));
  }
  std::sort(snap.families.begin(), snap.families.end(),
            [](const Snapshot::Family& a, const Snapshot::Family& b) {
              return a.name < b.name;
            });
  return snap;
}

}  // namespace rfid::obs
