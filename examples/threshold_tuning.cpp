// Threshold tuning: how should an operator pick (m, alpha)?
//
// Sec. 3: "a higher tolerance and lower confidence level will result in
// faster performance with less accuracy". This example makes the trade
// concrete for one population by reporting, per candidate (m, alpha):
//   * scan cost      — the Eq. (2) frame size and its wall-clock estimate,
//   * sensitivity    — simulated detection rate when m+1 tags go missing,
//   * nuisance rate  — simulated false-alarm rate on an intact set behind a
//                      slightly lossy channel (0.2% reply loss), the
//                      real-world reason tolerance exists at all.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "rfidmon.h"

int main() {
  using namespace rfid;
  constexpr std::uint64_t kTags = 800;
  constexpr std::uint64_t kTrials = 300;
  const radio::TimingModel timing;
  const radio::ChannelModel lossy{.reply_loss_prob = 0.002, .capture_prob = 0.0};
  const sim::TrialRunner runner;

  std::printf("population: %llu tags; channel: 0.2%% reply loss; "
              "%llu trials per cell\n\n",
              static_cast<unsigned long long>(kTags),
              static_cast<unsigned long long>(kTrials));

  util::Table table({"m", "alpha", "frame_slots", "scan_ms", "detect_m+1",
                     "false_alarm"});
  for (const std::uint64_t m : {0u, 5u, 10u, 20u, 40u}) {
    for (const double alpha : {0.90, 0.95, 0.99}) {
      const protocol::MonitoringPolicy policy{.tolerated_missing = m,
                                              .confidence = alpha};
      const auto plan = math::optimize_trp_frame(kTags, m, alpha);

      // Sensitivity: steal m+1, ideal channel (the design-point event).
      const auto detect = runner.run_boolean(
          kTrials, util::derive_seed(11, m, static_cast<std::uint64_t>(alpha * 1000)),
          [&](std::uint64_t, util::Rng& rng) {
            tag::TagSet set = tag::TagSet::make_random(kTags, rng);
            const protocol::TrpServer server(set.ids(), policy);
            (void)set.steal_random(m + 1, rng);
            const auto c = server.issue_challenge(rng);
            const protocol::TrpReader reader;
            return !server.verify(c, reader.scan(set.tags(), c, rng)).intact;
          });

      // Nuisance: intact set, lossy channel.
      const auto nuisance = runner.run_boolean(
          kTrials, util::derive_seed(12, m, static_cast<std::uint64_t>(alpha * 1000)),
          [&](std::uint64_t, util::Rng& rng) {
            const tag::TagSet set = tag::TagSet::make_random(kTags, rng);
            const protocol::TrpServer server(set.ids(), policy);
            const protocol::TrpReader reader(hash::SlotHasher{}, lossy);
            const auto c = server.issue_challenge(rng);
            return !server.verify(c, reader.scan(set.tags(), c, rng)).intact;
          });

      // Scan time: occupied-slot count ~ f(1 - e^{-n/f}).
      const double occupied = static_cast<double>(plan.frame_size) *
                              (1.0 - std::exp(-static_cast<double>(kTags) /
                                              plan.frame_size));
      const double ms = timing.trp_scan_us(
                            plan.frame_size - static_cast<std::uint64_t>(occupied),
                            static_cast<std::uint64_t>(occupied)) /
                        1000.0;

      table.begin_row();
      table.add_cell(static_cast<long long>(m));
      table.add_cell(alpha, 2);
      table.add_cell(static_cast<long long>(plan.frame_size));
      table.add_cell(ms, 1);
      table.add_cell(detect.proportion(), 3);
      table.add_cell(nuisance.proportion(), 3);
    }
  }
  table.print(std::cout);

  std::printf(
      "\nreading the table: frame cost explodes as m -> 0 at high alpha\n"
      "(catching ONE missing tag among %llu needs a mostly-empty frame);\n"
      "meanwhile even a 0.2%% lossy channel alarms constantly regardless of\n"
      "m, because TRP compares exact bitstrings — the tolerance m buys\n"
      "cheaper frames, not lossy-channel immunity. Operators should budget\n"
      "for link retries and pick the smallest m whose frame cost fits the\n"
      "scan window.\n",
      static_cast<unsigned long long>(kTags));
  return 0;
}
