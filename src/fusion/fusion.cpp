#include "fusion/fusion.h"

#include <algorithm>

#include "util/expect.h"

namespace rfid::fusion {

void FusionConfig::validate() const {
  RFID_EXPECT(readers >= 1, "fusion needs at least one reader");
  RFID_EXPECT(quorum <= readers, "quorum cannot exceed the reader count");
  RFID_EXPECT(2 * assumed_faulty < readers,
              "assumed_faulty must be a strict minority of the readers");
  RFID_EXPECT(effective_quorum() > 2 * assumed_faulty,
              "quorum too small to outvote the assumed-faulty coalition");
  RFID_EXPECT(slot_loss >= 0.0 && slot_loss < 1.0,
              "slot_loss must be in [0, 1)");
  RFID_EXPECT(alert_budget > 0.0 && alert_budget < 1.0,
              "alert_budget must be in (0, 1)");
  RFID_EXPECT(trust_decay >= 0.0 && trust_decay <= 1.0,
              "trust_decay must be in [0, 1]");
  RFID_EXPECT(min_trust > 0.0 && min_trust <= 1.0,
              "min_trust must be in (0, 1]");
  RFID_EXPECT(suspect_overruled > 0.0 && suspect_overruled < 1.0,
              "suspect_overruled must be in (0, 1)");
  RFID_EXPECT(suspect_after_rounds >= 1,
              "suspect_after_rounds must be at least 1");
}

FusedRound fuse_round(std::span<const bits::Bitstring* const> observed,
                      std::span<const double> trust) {
  RFID_EXPECT(observed.size() == trust.size(),
              "need one trust weight per reader");
  std::size_t frame = 0;
  std::uint32_t valid = 0;
  double total_weight = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    if (observed[i] == nullptr) continue;
    if (valid == 0) {
      frame = observed[i]->size();
    } else {
      RFID_EXPECT(observed[i]->size() == frame,
                  "all observations in a round must share the frame size");
    }
    ++valid;
    total_weight += trust[i];
  }
  RFID_EXPECT(valid >= 1, "cannot fuse a round with no observations");

  FusedRound round;
  round.fused = bits::Bitstring(frame);
  round.valid_readers = valid;
  round.slots_fused = frame;
  round.phantom_busy.assign(observed.size(), 0);
  round.missed_busy.assign(observed.size(), 0);

  for (std::size_t slot = 0; slot < frame; ++slot) {
    double busy_weight = 0.0;
    for (std::size_t i = 0; i < observed.size(); ++i) {
      if (observed[i] != nullptr && observed[i]->test(slot)) {
        busy_weight += trust[i];
      }
    }
    // Busy needs a strict weight majority; ties read empty, so a faulty
    // minority can never phantom a slot past equally-trusted honest radios.
    const bool busy = busy_weight * 2.0 > total_weight;
    round.fused.set(slot, busy);
    for (std::size_t i = 0; i < observed.size(); ++i) {
      if (observed[i] == nullptr) continue;
      const bool vote = observed[i]->test(slot);
      if (vote == busy) continue;
      ++round.votes_overruled;
      if (vote) {
        ++round.phantom_busy[i];
      } else {
        ++round.missed_busy[i];
      }
    }
  }
  return round;
}

TrustTracker::TrustTracker(const FusionConfig& config)
    : config_(config),
      trust_(config.readers, 1.0),
      bad_rounds_(config.readers, 0),
      overruled_(config.readers, 0) {
  config.validate();
}

void TrustTracker::observe_round(const FusedRound& round) {
  RFID_EXPECT(round.phantom_busy.size() == trust_.size() &&
                  round.missed_busy.size() == trust_.size(),
              "fused round and tracker disagree on the reader count");
  if (round.slots_fused == 0) return;
  const double slots = static_cast<double>(round.slots_fused);
  for (std::size_t i = 0; i < trust_.size(); ++i) {
    const std::uint64_t overruled =
        round.phantom_busy[i] + round.missed_busy[i];
    overruled_[i] += overruled;
    const double frac = static_cast<double>(overruled) / slots;
    trust_[i] = std::max(config_.min_trust,
                         trust_[i] * (1.0 - config_.trust_decay * frac));
    const double missed_frac =
        static_cast<double>(round.missed_busy[i]) / slots;
    if (round.phantom_busy[i] > 0 || missed_frac > config_.suspect_overruled) {
      ++bad_rounds_[i];
    }
  }
}

bool TrustTracker::suspect(std::uint32_t reader) const {
  RFID_EXPECT(reader < bad_rounds_.size(), "reader index out of range");
  return bad_rounds_[reader] >= config_.suspect_after_rounds;
}

std::uint32_t TrustTracker::suspect_count() const {
  std::uint32_t count = 0;
  for (std::uint32_t i = 0; i < bad_rounds_.size(); ++i) {
    if (suspect(i)) ++count;
  }
  return count;
}

std::uint64_t TrustTracker::overruled_votes(std::uint32_t reader) const {
  RFID_EXPECT(reader < overruled_.size(), "reader index out of range");
  return overruled_[reader];
}

}  // namespace rfid::fusion
