#include "protocol/air_driver.h"

#include "radio/frame.h"
#include "util/expect.h"

namespace rfid::protocol {

namespace {

/// Schedules one medium occupancy of `duration` and records its completion.
void occupy_medium(sim::EventQueue& queue, double duration, AirEventKind kind,
                   std::uint32_t slot, AirRunResult& result, double& cursor) {
  cursor += duration;
  queue.schedule_at(cursor, [&result, kind, slot, at = cursor] {
    result.timeline.push_back(AirEvent{at, kind, slot});
  });
}

}  // namespace

AirRunResult AirDriver::run_trp_round(sim::EventQueue& queue,
                                      std::span<const tag::Tag> present,
                                      const TrpChallenge& challenge,
                                      util::Rng& rng) const {
  RFID_EXPECT(challenge.frame_size >= 1, "challenge has no slots");
  const radio::FrameObservation obs = radio::simulate_frame(
      present, hasher_, challenge.r, challenge.frame_size, channel_, rng);

  AirRunResult result;
  result.bitstring = obs.bitstring;
  double cursor = queue.now();
  occupy_medium(queue, timing_.query_broadcast_us, AirEventKind::kQueryBroadcast,
                0, result, cursor);
  for (std::uint32_t slot = 0; slot < challenge.frame_size; ++slot) {
    const bool occupied = obs.bitstring.test(slot);
    occupy_medium(queue,
                  occupied ? timing_.short_reply_slot_us : timing_.empty_slot_us,
                  occupied ? AirEventKind::kReplySlot : AirEventKind::kEmptySlot,
                  slot, result, cursor);
  }
  (void)queue.run(cursor);
  result.finish_us = cursor;
  return result;
}

AirRunResult AirDriver::run_utrp_round(sim::EventQueue& queue,
                                       std::span<tag::Tag> present,
                                       const UtrpChallenge& challenge) const {
  const UtrpScanResult scan = utrp_scan(present, hasher_, challenge);

  AirRunResult result;
  result.bitstring = scan.bitstring;
  double cursor = queue.now();
  occupy_medium(queue, timing_.query_broadcast_us, AirEventKind::kQueryBroadcast,
                0, result, cursor);
  // Every observed reply except (possibly) a frame-final one was followed by
  // a re-seed broadcast; emit them in slot order until the count is spent.
  std::uint64_t reseeds_left = scan.reseeds;
  for (std::uint32_t slot = 0; slot < challenge.frame_size; ++slot) {
    const bool occupied = scan.bitstring.test(slot);
    occupy_medium(queue,
                  occupied ? timing_.short_reply_slot_us : timing_.empty_slot_us,
                  occupied ? AirEventKind::kReplySlot : AirEventKind::kEmptySlot,
                  slot, result, cursor);
    if (occupied && reseeds_left > 0) {
      --reseeds_left;
      occupy_medium(queue, timing_.reseed_broadcast_us,
                    AirEventKind::kReseedBroadcast, slot, result, cursor);
    }
  }
  RFID_ENSURE(reseeds_left == 0, "re-seed accounting drifted from the walk");
  (void)queue.run(cursor);
  result.finish_us = cursor;
  return result;
}

}  // namespace rfid::protocol
