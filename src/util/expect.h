// Precondition / invariant checking helpers.
//
// RFID_EXPECT   — precondition on a public API; violations are programmer
//                 errors and throw std::invalid_argument so tests can assert
//                 on them without aborting the process.
// RFID_ENSURE   — internal invariant / postcondition; violations indicate a
//                 bug inside this library and throw std::logic_error.
//
// Both macros always evaluate their condition (they are not compiled out in
// release builds): every check in this library guards cheap scalar conditions
// on API boundaries, far from the hot per-slot loops.
//
// RFID_DEBUG_EXPECT — like RFID_EXPECT, but compiled out under NDEBUG. For
//                 checks on hot paths (per-draw, per-slot) where the release
//                 build must pay nothing and a documented degraded result is
//                 acceptable.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace rfid::detail {

[[noreturn]] inline void throw_expect_failure(const char* cond, const char* file,
                                              int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: (" << cond << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_ensure_failure(const char* cond, const char* file,
                                              int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant failed: (" << cond << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace rfid::detail

#define RFID_EXPECT(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) ::rfid::detail::throw_expect_failure(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)

#define RFID_ENSURE(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) ::rfid::detail::throw_ensure_failure(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)

#ifdef NDEBUG
#define RFID_DEBUG_EXPECT(cond, msg) \
  do {                               \
  } while (false)
#else
#define RFID_DEBUG_EXPECT(cond, msg) RFID_EXPECT(cond, msg)
#endif
