// Ablation — Fig. 4 in wall-clock time instead of slot counts.
//
// The paper notes (Sec. 6) that slot counts *understate* collect-all's cost:
// an ID reply (96-bit EPC + CRC) holds the medium much longer than TRP's few
// random bits. This bench replays the Fig. 4 comparison through the EPC
// C1G2-derived TimingModel, also charging UTRP's re-seed broadcasts — the
// other cost Fig. 6 deliberately ignores.
#include <cstdint>

#include "bench_common.h"
#include "math/frame_optimizer.h"
#include "protocol/collect_all.h"
#include "protocol/trp.h"
#include "protocol/utrp.h"
#include "radio/timing.h"
#include "sim/trial_runner.h"
#include "tag/tag_set.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace rfid;
  auto opt = bench::parse_figure_options(argc, argv);
  opt.n_step = std::max<std::uint64_t>(opt.n_step, 400);
  const sim::TrialRunner runner(opt.threads);
  const radio::TimingModel timing;
  const hash::SlotHasher hasher;

  constexpr std::uint64_t kTolerance = 10;
  bench::banner("Ablation: wall-clock comparison, m = " +
                std::to_string(kTolerance) + " (EPC C1G2-derived timing; ms)");

  util::Table table({"n", "collect_all_ms", "trp_ms", "utrp_ms",
                     "collect_over_trp", "utrp_over_trp"});
  for (const std::uint64_t n : bench::tag_count_sweep(opt)) {
    if (kTolerance + 1 > n) continue;

    // collect-all: mean elapsed time across trials.
    const auto baseline_ms = runner.run_metric(
        opt.trials, util::derive_seed(opt.seed, n, 1),
        [&](std::uint64_t, util::Rng& rng) {
          const tag::TagSet set = tag::TagSet::make_random(n, rng);
          const auto result = protocol::run_collect_all(
              set.tags(), hasher, {.stop_after_collected = n - kTolerance}, rng);
          return result.elapsed_us(timing) / 1000.0;
        });

    // TRP: frame composition from honest scans.
    const auto trp_plan = math::optimize_trp_frame(n, kTolerance, opt.alpha);
    const auto trp_ms = runner.run_metric(
        opt.trials, util::derive_seed(opt.seed, n, 2),
        [&](std::uint64_t, util::Rng& rng) {
          const tag::TagSet set = tag::TagSet::make_random(n, rng);
          const protocol::TrpChallenge c{trp_plan.frame_size, rng()};
          const protocol::TrpReader reader(hasher);
          const auto obs = reader.scan_observed(set.tags(), c, rng);
          return timing.trp_scan_us(obs.empty_slots,
                                    obs.single_slots + obs.collision_slots) /
                 1000.0;
        });

    // UTRP: walk the real protocol to count re-seed broadcasts.
    const auto utrp_plan =
        math::optimize_utrp_frame(n, kTolerance, opt.alpha, opt.budget);
    const auto utrp_ms = runner.run_metric(
        opt.trials, util::derive_seed(opt.seed, n, 3),
        [&](std::uint64_t, util::Rng& rng) {
          tag::TagSet set = tag::TagSet::make_random(n, rng);
          protocol::UtrpChallenge c;
          c.frame_size = utrp_plan.frame_size;
          c.seeds.reserve(c.frame_size);
          for (std::uint32_t i = 0; i < c.frame_size; ++i) c.seeds.push_back(rng());
          const auto scan = protocol::utrp_scan(set.tags(), hasher, c);
          const std::uint64_t occupied = scan.bitstring.count();
          return timing.utrp_scan_us(c.frame_size - occupied, occupied,
                                     scan.reseeds) /
                 1000.0;
        });

    table.begin_row();
    table.add_cell(static_cast<long long>(n));
    table.add_cell(baseline_ms.mean(), 1);
    table.add_cell(trp_ms.mean(), 1);
    table.add_cell(utrp_ms.mean(), 1);
    table.add_cell(baseline_ms.mean() / trp_ms.mean(), 2);
    table.add_cell(utrp_ms.mean() / trp_ms.mean(), 2);
  }
  bench::emit(table, opt);
  return 0;
}
