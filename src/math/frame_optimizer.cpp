#include "math/frame_optimizer.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "math/approximation.h"
#include "math/binomial.h"
#include "util/expect.h"
#include "util/log.h"

namespace rfid::math {

TrpPlan optimize_trp_frame(std::uint64_t n, std::uint64_t m, double alpha,
                           EmptySlotModel model) {
  RFID_EXPECT(n >= 1, "need at least one tag");
  RFID_EXPECT(m + 1 <= n, "tolerance m must satisfy m + 1 <= n");
  RFID_EXPECT(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");

  const auto pred = [&](std::uint32_t f) {
    return detection_probability(n, m + 1, f, model) > alpha;
  };
  // The mean-field closed form lands within a couple percent of the true
  // optimum, so the bracket search starts essentially at the answer.
  const std::uint32_t hint = approximate_trp_frame(n, m, alpha);
  TrpPlan plan;
  plan.frame_size = minimal_satisfying_frame(pred, hint);
  plan.predicted_detection =
      detection_probability(n, m + 1, plan.frame_size, model);
  return plan;
}

double utrp_detection_probability(std::uint64_t n, std::uint64_t m,
                                  std::uint64_t c, std::uint64_t f,
                                  EmptySlotModel model) {
  RFID_EXPECT(n >= 1, "need at least one tag");
  RFID_EXPECT(m + 1 <= n, "tolerance m must satisfy m + 1 <= n");
  RFID_EXPECT(f >= 1, "frame size must be positive");

  const std::uint64_t s1 = n - m - 1;  // tags the dishonest reader keeps
  const std::uint64_t s2 = m + 1;      // stolen tags at the collaborator

  // Theorem 3: expected slots scanned until c empty-for-s1 slots seen.
  const double fd = static_cast<double>(f);
  const double p_empty = empty_slot_probability(s1, f, model);
  const double cprime = p_empty > 0.0
                            ? static_cast<double>(c) / p_empty
                            : std::numeric_limits<double>::infinity();
  if (!(cprime < fd)) return 0.0;  // adversary coordinates the entire frame

  const double q = 1.0 - cprime / fd;  // P(tag replies after the first c' slots)
  const auto f_eff = static_cast<std::uint64_t>(std::llround(fd - cprime));
  if (f_eff == 0) return 0.0;

  // Eq. 3 double sum over x ~ B(s2, q) and y ~ B(s1, q); y is truncated to
  // its significant window, x (at most m+1 ≤ a few dozen) is kept in full.
  double detect = 0.0;
  for (std::uint64_t i = 0; i <= s2; ++i) {
    const double px = binomial_pmf(s2, i, q);
    if (px < 1e-14 || i == 0) continue;  // i == 0 contributes g(..,0,..) = 0
    for_each_binomial_outcome(s1, q, [&](std::uint64_t j, double py) {
      detect += px * py * detection_probability(i + j, i, f_eff, model);
    });
  }
  if (detect < 0.0) detect = 0.0;
  if (detect > 1.0) detect = 1.0;
  return detect;
}

UtrpPlan optimize_utrp_frame(std::uint64_t n, std::uint64_t m, double alpha,
                             std::uint64_t c, std::uint32_t slack_slots,
                             EmptySlotModel model) {
  RFID_EXPECT(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");

  const auto pred = [&](std::uint32_t f) {
    return utrp_detection_probability(n, m, c, f, model) > alpha;
  };
  // UTRP never needs a smaller frame than TRP (the adversary only gains
  // information relative to TRP), so start the bracket search there.
  const TrpPlan trp = optimize_trp_frame(n, m, alpha, model);

  UtrpPlan plan;
  plan.optimal_frame = minimal_satisfying_frame(pred, trp.frame_size);
  plan.frame_size = plan.optimal_frame + slack_slots;
  plan.predicted_detection =
      utrp_detection_probability(n, m, c, plan.frame_size, model);
  plan.expected_cprime =
      static_cast<double>(c) /
      empty_slot_probability(n - m - 1, plan.frame_size, model);
  RFID_ENSURE(plan.predicted_detection > alpha,
              "slack must not lower the detection probability");
  return plan;
}

}  // namespace rfid::math
