// The metric catalog: every family the instrumented layers emit, defined
// once so label sets, help strings, and bucket layouts cannot drift between
// call sites (the registry rejects conflicting re-registration, so a drifted
// caller fails fast instead of forking the series).
//
// Naming follows Prometheus conventions: rfidmon_ prefix, _total suffix on
// counters, explicit unit suffixes (_us, _bytes). The full table with
// layers and label meanings lives in docs/observability.md — keep the two
// in sync.
//
// Each helper resolves through the family map under a mutex; hot paths
// (per-round, per-frame) should resolve once and cache the reference —
// that is what TrpServer/UtrpServer/Link do in their set_metrics/attach
// hooks.
#pragma once

#include <string_view>

#include "obs/metrics.h"

namespace rfid::obs::catalog {

// ----------------------------------------------------------- protocol ----

inline Counter& challenges_total(MetricsRegistry& r, std::string_view protocol) {
  return r.counter_family("rfidmon_challenges_total",
                          "Challenges issued, by protocol.", {"protocol"})
      .with({protocol});
}

inline Counter& rounds_total(MetricsRegistry& r, std::string_view protocol,
                             std::string_view outcome) {
  return r.counter_family(
           "rfidmon_rounds_total",
           "Monitoring rounds verified, by protocol and verdict outcome.",
           {"protocol", "outcome"})
      .with({protocol, outcome});
}

inline Counter& slots_total(MetricsRegistry& r, std::string_view protocol) {
  return r.counter_family("rfidmon_slots_total",
                          "Frame slots consumed by verified rounds.",
                          {"protocol"})
      .with({protocol});
}

inline Counter& mismatched_slots_total(MetricsRegistry& r,
                                       std::string_view protocol) {
  return r.counter_family(
           "rfidmon_mismatched_slots_total",
           "Slots that differed from the expected bitstring (theft signal).",
           {"protocol"})
      .with({protocol});
}

inline Histogram& frame_size(MetricsRegistry& r, std::string_view protocol) {
  return r.histogram_family(
           "rfidmon_frame_size",
           "Frame size chosen per issued challenge (Eq. 2 / Eq. 3).",
           {"protocol"}, Histogram::exponential_bounds(16.0, 2.0, 16))
      .with({protocol});
}

inline Counter& reseeds_total(MetricsRegistry& r, std::string_view side) {
  return r.counter_family(
           "rfidmon_reseeds_total",
           "UTRP re-seed broadcasts walked (reader = physical scan, mirror = "
           "server-side commit replay).",
           {"side"})
      .with({side});
}

inline Counter& multi_round_campaigns_total(MetricsRegistry& r,
                                            std::string_view outcome) {
  return r.counter_family("rfidmon_multi_round_campaigns_total",
                          "Multi-round TRP campaigns verified, by outcome.",
                          {"outcome"})
      .with({outcome});
}

inline Counter& bulk_slots_total(MetricsRegistry& r, std::string_view kernel) {
  return r.counter_family(
           "rfidmon_bulk_slots_total",
           "Tag slot computations executed by a columnar bulk kernel, by "
           "kernel (trp_frame | utrp_seed).",
           {"kernel"})
      .with({kernel});
}

// --------------------------------------------------------------- wire ----

inline Counter& frames_sent_total(MetricsRegistry& r,
                                  std::string_view direction) {
  return r.counter_family("rfidmon_frames_sent_total",
                          "Frames offered to a link (duplicates included).",
                          {"direction"})
      .with({direction});
}

inline Counter& frames_dropped_total(MetricsRegistry& r,
                                     std::string_view direction) {
  return r.counter_family("rfidmon_frames_dropped_total",
                          "Frames a link dropped (i.i.d. loss plus bursts).",
                          {"direction"})
      .with({direction});
}

inline Counter& bytes_sent_total(MetricsRegistry& r,
                                 std::string_view direction) {
  return r.counter_family("rfidmon_bytes_sent_total",
                          "Payload bytes offered to a link.", {"direction"})
      .with({direction});
}

inline Counter& retransmissions_total(MetricsRegistry& r) {
  return r.counter("rfidmon_retransmissions_total",
                   "Timeout-driven retransmissions across all sessions.");
}

inline Counter& scan_slots_total(MetricsRegistry& r, std::string_view protocol,
                                 std::string_view kind) {
  return r.counter_family(
           "rfidmon_scan_slots_total",
           "Slots the reader observed while scanning, empty vs. reply.",
           {"protocol", "kind"})
      .with({protocol, kind});
}

inline Counter& sessions_total(MetricsRegistry& r, std::string_view protocol,
                               std::string_view outcome) {
  return r.counter_family(
           "rfidmon_sessions_total",
           "Wire sessions finished, by protocol and outcome ('completed' or "
           "the FailureReason).",
           {"protocol", "outcome"})
      .with({protocol, outcome});
}

inline Histogram& session_duration_us(MetricsRegistry& r,
                                      std::string_view protocol) {
  return r.histogram_family(
           "rfidmon_session_duration_us",
           "End-to-end wire session duration in simulated microseconds.",
           {"protocol"}, Histogram::exponential_bounds(1000.0, 4.0, 12))
      .with({protocol});
}

inline Counter& round_failures_total(MetricsRegistry& r,
                                     std::string_view reason) {
  return r.counter_family("rfidmon_round_failures_total",
                          "Rounds that failed, by FailureReason.", {"reason"})
      .with({reason});
}

inline Counter& faults_injected_total(MetricsRegistry& r,
                                      std::string_view kind) {
  return r.counter_family(
           "rfidmon_faults_injected_total",
           "Faults the injector actually delivered, by kind (burst_drop, "
           "corrupt, duplicate, reorder, reader_crash).",
           {"kind"})
      .with({kind});
}

inline Counter& corrupt_frames_rejected_total(MetricsRegistry& r) {
  return r.counter("rfidmon_corrupt_frames_rejected_total",
                   "Frames the framing checksum rejected at a receiver.");
}

// ------------------------------------------------------------- server ----

inline Counter& alerts_total(MetricsRegistry& r, std::string_view kind) {
  return r.counter_family("rfidmon_alerts_total",
                          "Alerts recorded on the inventory server, by kind.",
                          {"kind"})
      .with({kind});
}

inline Counter& resyncs_total(MetricsRegistry& r) {
  return r.counter("rfidmon_resyncs_total",
                   "Diverged UTRP mirrors healed from a physical audit.");
}

inline Counter& verdicts_total(MetricsRegistry& r, std::string_view protocol,
                               std::string_view verdict) {
  return r.counter_family(
           "rfidmon_verdicts_total",
           "Detection verdicts the inventory server produced (intact | "
           "violated).",
           {"protocol", "verdict"})
      .with({protocol, verdict});
}

inline Counter& groups_enrolled_total(MetricsRegistry& r,
                                      std::string_view protocol) {
  return r.counter_family("rfidmon_groups_enrolled_total",
                          "Groups enrolled on the inventory server.",
                          {"protocol"})
      .with({protocol});
}

inline Counter& expected_cache_total(MetricsRegistry& r,
                                     std::string_view result) {
  return r.counter_family(
           "rfidmon_expected_cache_total",
           "Expected-bitstring cache lookups on TRP submissions, by result "
           "(hit | miss).",
           {"result"})
      .with({result});
}

inline Counter& expected_cache_invalidations_total(MetricsRegistry& r) {
  return r.counter("rfidmon_expected_cache_invalidations_total",
                   "Expected-bitstring cache entries dropped because their "
                   "group was re-enrolled, resynced, or decommissioned.");
}

// -------------------------------------------------------------- fleet ----

inline Counter& fleet_runs_total(MetricsRegistry& r, std::string_view verdict) {
  return r.counter_family(
           "rfidmon_fleet_runs_total",
           "Fleet runs aggregated, by global verdict (intact | violated | "
           "inconclusive).",
           {"verdict"})
      .with({verdict});
}

inline Counter& fleet_inventories_total(MetricsRegistry& r,
                                        std::string_view verdict) {
  return r.counter_family(
           "rfidmon_fleet_inventories_total",
           "Inventories a fleet run monitored, by per-inventory verdict.",
           {"verdict"})
      .with({verdict});
}

inline Counter& fleet_admissions_total(MetricsRegistry& r,
                                       std::string_view result) {
  return r.counter_family(
           "rfidmon_fleet_admissions_total",
           "Inventory submissions, by admission result (accepted | deferred "
           "| rejected).",
           {"result"})
      .with({result});
}

inline Counter& fleet_zones_total(MetricsRegistry& r,
                                  std::string_view status) {
  return r.counter_family(
           "rfidmon_fleet_zones_total",
           "Zones that reached a terminal state, by ZoneStatus (intact | "
           "violated | failed).",
           {"status"})
      .with({status});
}

inline Counter& fleet_zone_attempts_total(MetricsRegistry& r,
                                          std::string_view protocol) {
  return r.counter_family(
           "rfidmon_fleet_zone_attempts_total",
           "Zone session attempts executed (first tries plus requeues), by "
           "protocol.",
           {"protocol"})
      .with({protocol});
}

inline Counter& fleet_requeues_total(MetricsRegistry& r) {
  return r.counter("rfidmon_fleet_requeues_total",
                   "Zones requeued onto healthy capacity after a retryable "
                   "FailureReason.");
}

inline Counter& fleet_escalations_total(MetricsRegistry& r) {
  return r.counter("rfidmon_fleet_escalations_total",
                   "Zones escalated as fleet-level alerts after exhausting "
                   "their attempt cap.");
}

inline Counter& fleet_zone_resyncs_total(MetricsRegistry& r) {
  return r.counter("rfidmon_fleet_zone_resyncs_total",
                   "UTRP zone mirrors rebuilt from a fresh audit before a "
                   "retry (divergence healing).");
}

inline Counter& fleet_zones_recovered_total(MetricsRegistry& r) {
  return r.counter("rfidmon_fleet_zones_recovered_total",
                   "Zone results reused from an interrupted run's fleet "
                   "journal instead of re-executed.");
}

inline Histogram& fleet_zone_duration_us(MetricsRegistry& r,
                                         std::string_view protocol) {
  return r.histogram_family(
           "rfidmon_fleet_zone_duration_us",
           "Simulated duration of a zone's final session attempt.",
           {"protocol"}, Histogram::exponential_bounds(1000.0, 4.0, 12))
      .with({protocol});
}

// ------------------------------------------------------------- fusion ----

inline Counter& fusion_slots_fused_total(MetricsRegistry& r) {
  return r.counter("rfidmon_fusion_slots_fused_total",
                   "Frame slots put through the multi-reader majority vote.");
}

inline Counter& fusion_votes_overruled_total(MetricsRegistry& r,
                                             std::string_view direction) {
  return r.counter_family(
           "rfidmon_fusion_votes_overruled_total",
           "Per-reader slot votes the fused majority overruled, by "
           "direction (phantom_busy | missed_busy).",
           {"direction"})
      .with({direction});
}

inline Counter& fusion_rounds_degraded_total(MetricsRegistry& r) {
  return r.counter("rfidmon_fusion_rounds_degraded_total",
                   "Zone rounds committed below the completion quorum.");
}

inline Counter& fusion_readers_suspected_total(MetricsRegistry& r) {
  return r.counter("rfidmon_fusion_readers_suspected_total",
                   "Readers flagged suspect for persistently outvoted or "
                   "phantom slot evidence.");
}

inline Counter& fusion_readers_quarantined_total(MetricsRegistry& r) {
  return r.counter("rfidmon_fusion_readers_quarantined_total",
                   "Readers the daemon's per-reader health tier placed in "
                   "quarantine.");
}

// ------------------------------------------------------------- daemon ----

inline Counter& daemon_epochs_total(MetricsRegistry& r,
                                    std::string_view verdict) {
  return r.counter_family(
           "rfidmon_daemon_epochs_total",
           "Monitoring epochs the daemon checkpointed, by epoch verdict "
           "(intact | violated | inconclusive | degraded).",
           {"verdict"})
      .with({verdict});
}

inline Counter& daemon_alerts_total(MetricsRegistry& r,
                                    std::string_view kind) {
  return r.counter_family(
           "rfidmon_daemon_alerts_total",
           "Daemon alerts raised (replayed alerts are never re-counted), by "
           "kind.",
           {"kind"})
      .with({kind});
}

inline Counter& daemon_restarts_total(MetricsRegistry& r,
                                      std::string_view cause) {
  return r.counter_family(
           "rfidmon_daemon_restarts_total",
           "Supervised monitor restarts, by cause (crash | hang).", {"cause"})
      .with({cause});
}

inline Counter& daemon_checkpoints_total(MetricsRegistry& r) {
  return r.counter("rfidmon_daemon_checkpoints_total",
                   "Epoch checkpoints made durable in the daemon journal.");
}

inline Counter& daemon_replayed_alerts_total(MetricsRegistry& r) {
  return r.counter("rfidmon_daemon_replayed_alerts_total",
                   "Alerts restored from the daemon journal on resume "
                   "(already counted by the run that raised them).");
}

inline Histogram& daemon_resume_duration_us(MetricsRegistry& r) {
  return r.histogram("rfidmon_daemon_resume_duration_us",
                     "Wall-clock time to replay the daemon journal and "
                     "rebuild monitor state after a restart.",
                     Histogram::exponential_bounds(10.0, 4.0, 12));
}

// ------------------------------------------------------------ storage ----

inline Counter& journal_appends_total(MetricsRegistry& r) {
  return r.counter("rfidmon_journal_appends_total",
                   "Mutation records appended (and flushed) to the WAL.");
}

inline Counter& journal_bytes_total(MetricsRegistry& r) {
  return r.counter("rfidmon_journal_bytes_total",
                   "Encoded bytes appended to the WAL.");
}

inline Counter& journal_append_failures_total(MetricsRegistry& r) {
  return r.counter("rfidmon_journal_append_failures_total",
                   "WAL appends that failed with IoError (journal abandoned "
                   "by an emergency rotation).");
}

inline Counter& snapshot_rotations_total(MetricsRegistry& r) {
  return r.counter("rfidmon_snapshot_rotations_total",
                   "Checkpoint rotations (snapshot + fresh journal).");
}

inline Counter& recoveries_total(MetricsRegistry& r, std::string_view clean) {
  return r.counter_family(
           "rfidmon_recoveries_total",
           "Recoveries completed at startup; clean=\"false\" means damage "
           "was found (and healed).",
           {"clean"})
      .with({clean});
}

inline Histogram& recovery_duration_us(MetricsRegistry& r) {
  return r.histogram("rfidmon_recovery_duration_us",
                     "Wall-clock recovery duration (clock seam: see "
                     "DurabilityConfig::clock).",
                     Histogram::exponential_bounds(10.0, 4.0, 12));
}

inline Counter& recovery_records_replayed_total(MetricsRegistry& r) {
  return r.counter("rfidmon_recovery_records_replayed_total",
                   "Journal records replayed across all recoveries.");
}

inline Counter& recovery_truncated_bytes_total(MetricsRegistry& r) {
  return r.counter("rfidmon_recovery_truncated_bytes_total",
                   "Torn or rotted journal bytes dropped during recovery.");
}

inline Counter& recovery_snapshots_skipped_total(MetricsRegistry& r) {
  return r.counter("rfidmon_recovery_snapshots_skipped_total",
                   "Rotted/torn snapshots passed over during recovery.");
}

inline Counter& recovery_healed_total(MetricsRegistry& r) {
  return r.counter("rfidmon_recovery_healed_total",
                   "Recoveries that re-checkpointed to heal on-storage "
                   "damage (RecoveryReport::rotated_after_recovery).");
}

// ---------------------------------------------------- identification ----

inline Counter& identify_campaigns_total(MetricsRegistry& r,
                                         std::string_view protocol,
                                         std::string_view outcome) {
  return r
      .counter_family("rfidmon_identify_campaigns_total",
                      "Missing-tag identification campaigns by family "
                      "member and outcome (resolved vs round-capped).",
                      {"protocol", "outcome"})
      .with({protocol, outcome});
}

inline Counter& identify_rounds_total(MetricsRegistry& r,
                                      std::string_view protocol) {
  return r
      .counter_family("rfidmon_identify_rounds_total",
                      "Framed rounds spent by identification campaigns.",
                      {"protocol"})
      .with({protocol});
}

inline Counter& identify_slots_total(MetricsRegistry& r,
                                     std::string_view protocol,
                                     std::string_view kind) {
  return r
      .counter_family("rfidmon_identify_slots_total",
                      "Air slots consumed by identification campaigns: "
                      "framed slots vs tree-split prefix queries.",
                      {"protocol", "kind"})
      .with({protocol, kind});
}

inline Counter& identify_tags_total(MetricsRegistry& r,
                                    std::string_view verdict) {
  return r
      .counter_family("rfidmon_identify_tags_total",
                      "Tags classified by identification campaigns: "
                      "missing, present, or unresolved at the round cap.",
                      {"verdict"})
      .with({verdict});
}

inline Counter& identify_filter_bits_total(MetricsRegistry& r) {
  return r.counter("rfidmon_identify_filter_bits_total",
                   "Reader-to-tag ACK-filter bits broadcast by "
                   "filter-first identification campaigns.");
}

// ------------------------------------------------------------ service ----

inline Counter& service_connections_total(MetricsRegistry& r,
                                          std::string_view kind) {
  return r.counter_family(
           "rfidmon_service_connections_total",
           "Connections the monitoring service accepted, by listener "
           "(client | http).",
           {"kind"})
      .with({kind});
}

inline Gauge& service_active_connections(MetricsRegistry& r) {
  return r.gauge("rfidmon_service_active_connections",
                 "Client and HTTP connections currently open.");
}

inline Counter& service_frames_total(MetricsRegistry& r,
                                     std::string_view direction) {
  return r.counter_family("rfidmon_service_frames_total",
                          "Service frames parsed from (in) or queued to "
                          "(out) client connections.",
                          {"direction"})
      .with({direction});
}

inline Counter& service_frame_errors_total(MetricsRegistry& r,
                                           std::string_view kind) {
  return r.counter_family(
           "rfidmon_service_frame_errors_total",
           "Typed protocol errors sent to clients (oversized_frame, "
           "bad_checksum, unknown_type, malformed_payload, ...).",
           {"kind"})
      .with({kind});
}

inline Counter& service_admissions_total(MetricsRegistry& r,
                                         std::string_view result) {
  return r.counter_family(
           "rfidmon_service_admissions_total",
           "Tenant run/watch requests through admission control, by "
           "result (accepted | deferred | rejected).",
           {"result"})
      .with({result});
}

inline Counter& service_runs_total(MetricsRegistry& r,
                                   std::string_view verdict) {
  return r.counter_family(
           "rfidmon_service_runs_total",
           "Monitoring runs the service completed, by global verdict "
           "(intact | violated | inconclusive | aborted).",
           {"verdict"})
      .with({verdict});
}

inline Histogram& service_run_latency_us(MetricsRegistry& r) {
  return r.histogram("rfidmon_service_run_latency_us",
                     "Admission-to-verdict latency of a monitoring run "
                     "(wall clock, HDR buckets).",
                     Histogram::hdr_bounds(64.0, 6.7e7, 8));
}

inline Gauge& service_active_streams(MetricsRegistry& r) {
  return r.gauge("rfidmon_service_active_streams",
                 "Connections currently subscribed to a tenant alert feed.");
}

inline Counter& service_http_requests_total(MetricsRegistry& r,
                                            std::string_view path) {
  return r.counter_family(
           "rfidmon_service_http_requests_total",
           "Scrape-endpoint HTTP requests, by path (metrics | "
           "metrics_json | healthz | other).",
           {"path"})
      .with({path});
}

}  // namespace rfid::obs::catalog
