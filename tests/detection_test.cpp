// Tests for Theorem 1: g(n, x, f), the TRP detection probability.
//
// Beyond unit checks, the key validation is a Monte-Carlo cross-check: the
// closed form must agree with brute-force balls-in-bins simulation of the
// actual detection event.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "math/detection.h"
#include "util/random.h"

namespace {

using rfid::math::detection_probability;
using rfid::math::empty_slot_probability;
using rfid::math::EmptySlotModel;
using rfid::math::miss_probability;

TEST(EmptySlotProbability, PoissonApproximation) {
  EXPECT_NEAR(empty_slot_probability(100, 100, EmptySlotModel::kPoissonApprox),
              std::exp(-1.0), 1e-12);
  EXPECT_DOUBLE_EQ(empty_slot_probability(0, 10, EmptySlotModel::kPoissonApprox),
                   1.0);
}

TEST(EmptySlotProbability, ExactBallsInBins) {
  // (1 - 1/f)^n exactly.
  EXPECT_NEAR(empty_slot_probability(3, 4, EmptySlotModel::kExact),
              std::pow(0.75, 3), 1e-12);
  EXPECT_DOUBLE_EQ(empty_slot_probability(0, 4, EmptySlotModel::kExact), 1.0);
  // f = 1: the single slot is empty iff no tags exist.
  EXPECT_DOUBLE_EQ(empty_slot_probability(5, 1, EmptySlotModel::kExact), 0.0);
  EXPECT_DOUBLE_EQ(empty_slot_probability(0, 1, EmptySlotModel::kExact), 1.0);
}

TEST(EmptySlotProbability, ApproximationConvergesToExact) {
  // For large f the two models agree closely.
  const double approx = empty_slot_probability(500, 5000, EmptySlotModel::kPoissonApprox);
  const double exact = empty_slot_probability(500, 5000, EmptySlotModel::kExact);
  EXPECT_NEAR(approx, exact, 1e-4);
}

TEST(DetectionProbability, ZeroMissingNeverDetects) {
  EXPECT_DOUBLE_EQ(detection_probability(100, 0, 128), 0.0);
}

TEST(DetectionProbability, AllMissingAlwaysDetects) {
  // With every tag missing, every occupied-looking slot disappears; any
  // missing tag landing anywhere flips a bit (all slots are empty of
  // present tags).
  EXPECT_NEAR(detection_probability(50, 50, 64), 1.0, 1e-9);
}

TEST(DetectionProbability, WithinUnitInterval) {
  for (const std::uint64_t f : {1u, 10u, 100u, 1000u}) {
    for (const std::uint64_t x : {1u, 5u, 20u}) {
      const double g = detection_probability(100, x, f);
      EXPECT_GE(g, 0.0);
      EXPECT_LE(g, 1.0);
    }
  }
}

TEST(DetectionProbability, Lemma1MonotoneInMissingCount) {
  // Lemma 1: more missing tags are easier to detect.
  const std::uint64_t n = 500;
  const std::uint64_t f = 600;
  double prev = 0.0;
  for (std::uint64_t x = 1; x <= 40; ++x) {
    const double g = detection_probability(n, x, f);
    EXPECT_GE(g, prev - 1e-12) << "x=" << x;
    prev = g;
  }
}

TEST(DetectionProbability, MonotoneInFrameSize) {
  // More slots -> more empty slots -> better detection.
  const std::uint64_t n = 500;
  const std::uint64_t x = 6;
  double prev = 0.0;
  for (std::uint64_t f = 50; f <= 3000; f += 50) {
    const double g = detection_probability(n, x, f);
    EXPECT_GE(g, prev - 1e-9) << "f=" << f;
    prev = g;
  }
}

TEST(DetectionProbability, ApproachesOneForHugeFrames) {
  EXPECT_GT(detection_probability(100, 1, 1u << 20), 0.999);
}

TEST(DetectionProbability, TinyFrameDetectsAlmostNothing) {
  // f = 1: the single slot is occupied by the 99 remaining tags, so the
  // expected and observed bitstrings are identical -> no detection.
  EXPECT_LT(detection_probability(100, 1, 1), 1e-6);
}

TEST(DetectionProbability, MissProbabilityIsComplement) {
  const double g = detection_probability(300, 4, 400);
  EXPECT_NEAR(miss_probability(300, 4, 400), 1.0 - g, 1e-12);
}

TEST(DetectionProbability, RejectsInvalidArguments) {
  EXPECT_THROW((void)detection_probability(5, 6, 10), std::invalid_argument);
  EXPECT_THROW((void)detection_probability(5, 1, 0), std::invalid_argument);
}

TEST(DetectionProbability, ModelNamesRoundTrip) {
  EXPECT_EQ(rfid::math::to_string(EmptySlotModel::kPoissonApprox),
            "poisson-approx");
  EXPECT_EQ(rfid::math::to_string(EmptySlotModel::kExact), "exact");
}

// Monte-Carlo cross-validation of Theorem 1 against the real detection
// event: throw n-x present balls and x missing balls into f bins; detection
// iff some missing ball lands in a bin with no present ball.
class DetectionMonteCarlo
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>> {};

TEST_P(DetectionMonteCarlo, ClosedFormMatchesSimulation) {
  const auto [n, x, f] = GetParam();
  rfid::util::Rng rng(rfid::util::derive_seed(2024, n * 31 + x, f));
  constexpr int kTrials = 20000;
  int detected = 0;
  std::vector<char> occupied(f);
  for (int t = 0; t < kTrials; ++t) {
    std::fill(occupied.begin(), occupied.end(), 0);
    for (std::uint64_t i = 0; i < n - x; ++i) {
      occupied[rng.below(f)] = 1;
    }
    bool hit = false;
    for (std::uint64_t i = 0; i < x && !hit; ++i) {
      hit = occupied[rng.below(f)] == 0;
    }
    detected += hit ? 1 : 0;
  }
  const double simulated = static_cast<double>(detected) / kTrials;
  const double exact = detection_probability(n, x, f, EmptySlotModel::kExact);
  // Binomial noise over 20k trials: sigma <= 0.0035; allow 4 sigma.
  EXPECT_NEAR(simulated, exact, 0.015)
      << "n=" << n << " x=" << x << " f=" << f;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DetectionMonteCarlo,
    ::testing::Values(std::make_tuple(100u, 6u, 104u),
                      std::make_tuple(100u, 6u, 50u),
                      std::make_tuple(100u, 1u, 200u),
                      std::make_tuple(500u, 11u, 345u),
                      std::make_tuple(500u, 31u, 203u),
                      std::make_tuple(50u, 3u, 25u),
                      std::make_tuple(20u, 2u, 40u)));

}  // namespace
