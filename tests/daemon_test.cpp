// MonitorDaemon tests: epoch scheduling, tag churn and re-planning, alert
// debounce/escalation/quarantine/recovery, supervised crash and hang
// restarts with journal-replay resume, and stale-journal quarantine.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <variant>
#include <vector>

#include "daemon/daemon.h"
#include "hash/fnv.h"
#include "fault/daemon_fault.h"
#include "fault/fault.h"
#include "obs/catalog.h"
#include "obs/metrics.h"
#include "storage/backend.h"
#include "storage/daemon_journal.h"

namespace {

using namespace rfid;

// 30 tags, capacity 10 -> 3 zones, M = 2. Small enough that a full epoch is
// milliseconds of simulated protocol work.
daemon::WarehouseConfig small_warehouse() {
  daemon::WarehouseConfig warehouse;
  warehouse.initial_tags = 30;
  warehouse.tolerance = 2;
  warehouse.zone_capacity = 10;
  warehouse.rounds = 2;
  return warehouse;
}

daemon::DaemonConfig base_config(storage::MemoryBackend& backend) {
  daemon::DaemonConfig config;
  config.seed = 7;
  config.epochs = 3;
  config.backend = &backend;
  config.backoff_initial_ms = 0;  // no need to pace restarts in tests
  config.backoff_cap_ms = 1;
  return config;
}

// A zone fault that makes the reader never come back: the zone fails its
// whole epoch when paired with faults_on_retries.
fault::FaultPlan dead_reader() {
  fault::FaultPlan plan;
  plan.reader_crashes.push_back(fault::CrashWindow{0.0, 0.0});
  return plan;
}

std::vector<daemon::DaemonAlertKind> kinds_of(
    const std::vector<daemon::DaemonAlert>& alerts) {
  std::vector<daemon::DaemonAlertKind> kinds;
  kinds.reserve(alerts.size());
  for (const daemon::DaemonAlert& alert : alerts) kinds.push_back(alert.kind);
  return kinds;
}

void expect_monotonic_sequences(
    const std::vector<daemon::DaemonAlert>& alerts) {
  for (std::size_t i = 0; i < alerts.size(); ++i) {
    EXPECT_EQ(alerts[i].sequence, i) << "alert " << i;
  }
}

TEST(MonitorDaemon, QuietWarehouseStaysIntact) {
  storage::MemoryBackend backend;
  daemon::MonitorDaemon d(base_config(backend), small_warehouse());
  const daemon::DaemonResult result = d.run();

  EXPECT_EQ(result.epochs_completed, 3u);
  ASSERT_EQ(result.epoch_verdicts.size(), 3u);
  for (const daemon::EpochVerdict verdict : result.epoch_verdicts) {
    EXPECT_EQ(verdict, daemon::EpochVerdict::kIntact);
  }
  EXPECT_TRUE(result.alerts.empty());
  EXPECT_EQ(result.restarts, 0u);
  EXPECT_FALSE(result.gave_up);
  EXPECT_EQ(result.replayed_alerts, 0u);
  EXPECT_EQ(result.journal_append_failures, 0u);

  // The registry mirrors the plan: one active group per zone.
  EXPECT_EQ(d.registry().group_count(), 3u);
  for (std::size_t z = 0; z < 3; ++z) {
    EXPECT_TRUE(d.registry().active(server::GroupId{z}));
  }
}

TEST(MonitorDaemon, TheftLatchesOneViolationAlert) {
  storage::MemoryBackend backend;
  daemon::WarehouseConfig warehouse = small_warehouse();
  // From epoch 1 on, 6 of zone 0's 10 tags are gone — far over its share of
  // M = 2, so the zone verdict is violated (and stays violated).
  warehouse.churn.push_back(daemon::ChurnEvent{
      .epoch = 1, .enroll = 0, .decommission = 0, .steal = 6, .steal_from = 0});

  daemon::MonitorDaemon d(base_config(backend), warehouse);
  const daemon::DaemonResult result = d.run();

  ASSERT_EQ(result.epoch_verdicts.size(), 3u);
  EXPECT_EQ(result.epoch_verdicts[0], daemon::EpochVerdict::kIntact);
  EXPECT_EQ(result.epoch_verdicts[1], daemon::EpochVerdict::kViolated);
  EXPECT_EQ(result.epoch_verdicts[2], daemon::EpochVerdict::kViolated);

  // The violation latches: one kZoneViolated at epoch 1, no re-alert at
  // epoch 2 while the incident is still open. The continued misses do feed
  // the debounce machine (escalation at the default 2-epoch streak).
  std::size_t violated = 0;
  for (const daemon::DaemonAlert& alert : result.alerts) {
    if (alert.kind == daemon::DaemonAlertKind::kZoneViolated) {
      ++violated;
      EXPECT_EQ(alert.epoch, 1u);
      EXPECT_EQ(alert.zone, 0u);
    }
  }
  EXPECT_EQ(violated, 1u);
  expect_monotonic_sequences(result.alerts);
}

TEST(MonitorDaemon, ChurnReplansAndResyncsRegistry) {
  storage::MemoryBackend backend;
  daemon::WarehouseConfig warehouse = small_warehouse();
  // Epoch 1: +20 tags -> 50 tags -> 5 zones. Epoch 2: retire 20 -> 30 tags
  // -> back to 3 zones; the two extra registry groups are decommissioned.
  warehouse.churn.push_back(daemon::ChurnEvent{.epoch = 1, .enroll = 20});
  warehouse.churn.push_back(
      daemon::ChurnEvent{.epoch = 2, .decommission = 20});

  daemon::MonitorDaemon d(base_config(backend), warehouse);
  const daemon::DaemonResult result = d.run();

  EXPECT_EQ(result.epochs_completed, 3u);
  std::vector<daemon::DaemonAlertKind> replans;
  for (const daemon::DaemonAlert& alert : result.alerts) {
    if (alert.kind == daemon::DaemonAlertKind::kReplanned) {
      replans.push_back(alert.kind);
    }
  }
  EXPECT_EQ(replans.size(), 2u);  // 3 -> 5 zones, then 5 -> 3

  // GroupIds never shift: the registry grew to 5 groups and tombstoned the
  // last two when the zone count shrank back.
  EXPECT_EQ(d.registry().group_count(), 5u);
  EXPECT_TRUE(d.registry().active(server::GroupId{0}));
  EXPECT_TRUE(d.registry().active(server::GroupId{2}));
  EXPECT_FALSE(d.registry().active(server::GroupId{3}));
  EXPECT_FALSE(d.registry().active(server::GroupId{4}));
}

TEST(MonitorDaemon, DebounceEscalatesOnConsecutiveMisses) {
  storage::MemoryBackend backend;
  daemon::WarehouseConfig warehouse = small_warehouse();
  warehouse.zone_faults.push_back({.epoch = 0, .zone = 1, .plan = dead_reader()});
  warehouse.zone_faults.push_back({.epoch = 1, .zone = 1, .plan = dead_reader()});

  daemon::DaemonConfig config = base_config(backend);
  config.faults_on_retries = true;  // the outage outlives retries
  config.debounce_epochs = 2;
  config.quarantine_after_epochs = 4;

  daemon::MonitorDaemon d(config, warehouse);
  const daemon::DaemonResult result = d.run();

  ASSERT_EQ(result.epoch_verdicts.size(), 3u);
  EXPECT_EQ(result.epoch_verdicts[0], daemon::EpochVerdict::kInconclusive);
  EXPECT_EQ(result.epoch_verdicts[1], daemon::EpochVerdict::kInconclusive);
  EXPECT_EQ(result.epoch_verdicts[2], daemon::EpochVerdict::kIntact);

  // One miss is noise — the only alert is the escalation when the streak
  // reaches debounce_epochs.
  const std::vector<daemon::DaemonAlertKind> kinds = kinds_of(result.alerts);
  ASSERT_EQ(kinds.size(), 1u);
  EXPECT_EQ(kinds[0], daemon::DaemonAlertKind::kZoneEscalated);
  EXPECT_EQ(result.alerts[0].epoch, 1u);
  EXPECT_EQ(result.alerts[0].zone, 1u);
}

TEST(MonitorDaemon, QuarantineDegradesVerdictThenRecovers) {
  storage::MemoryBackend backend;
  daemon::WarehouseConfig warehouse = small_warehouse();
  for (std::uint64_t epoch = 0; epoch < 3; ++epoch) {
    warehouse.zone_faults.push_back(
        {.epoch = epoch, .zone = 0, .plan = dead_reader()});
  }

  daemon::DaemonConfig config = base_config(backend);
  config.epochs = 5;
  config.faults_on_retries = true;
  config.debounce_epochs = 1;
  config.quarantine_after_epochs = 2;
  config.quarantine_cooldown_epochs = 2;

  daemon::MonitorDaemon d(config, warehouse);
  const daemon::DaemonResult result = d.run();

  ASSERT_EQ(result.epoch_verdicts.size(), 5u);
  // Epochs 0-1: healthy-zone failures void the pigeonhole -> inconclusive.
  // Epoch 2: the zone was quarantined before the epoch -> degraded only.
  // Epochs 3-4: outage over -> intact (recovery completes at epoch 4).
  EXPECT_EQ(result.epoch_verdicts[0], daemon::EpochVerdict::kInconclusive);
  EXPECT_EQ(result.epoch_verdicts[1], daemon::EpochVerdict::kInconclusive);
  EXPECT_EQ(result.epoch_verdicts[2], daemon::EpochVerdict::kDegraded);
  EXPECT_EQ(result.epoch_verdicts[3], daemon::EpochVerdict::kIntact);
  EXPECT_EQ(result.epoch_verdicts[4], daemon::EpochVerdict::kIntact);

  const std::vector<daemon::DaemonAlertKind> kinds = kinds_of(result.alerts);
  const std::vector<daemon::DaemonAlertKind> expected = {
      daemon::DaemonAlertKind::kZoneEscalated,    // epoch 0 (debounce = 1)
      daemon::DaemonAlertKind::kZoneQuarantined,  // epoch 1 (streak = 2)
      daemon::DaemonAlertKind::kZoneRecovered,    // epoch 4 (cooldown = 2)
  };
  EXPECT_EQ(kinds, expected);
  expect_monotonic_sequences(result.alerts);
}

TEST(MonitorDaemon, CrashRestartsReplayIdenticalHistory) {
  // Baseline: no faults.
  daemon::WarehouseConfig warehouse = small_warehouse();
  warehouse.churn.push_back(daemon::ChurnEvent{
      .epoch = 1, .enroll = 0, .decommission = 0, .steal = 6, .steal_from = 0});
  std::string baseline;
  std::vector<daemon::EpochVerdict> baseline_verdicts;
  {
    storage::MemoryBackend backend;
    daemon::MonitorDaemon d(base_config(backend), warehouse);
    const daemon::DaemonResult result = d.run();
    baseline = daemon::render_alert_history(result.alerts);
    baseline_verdicts = result.epoch_verdicts;
    EXPECT_FALSE(baseline.empty());
  }

  // Crash on both sides of the checkpoint write.
  fault::DaemonFaultPlan plan;
  plan.crashes.push_back({1, fault::DaemonCrashPoint::kBeforeCheckpoint});
  plan.crashes.push_back({2, fault::DaemonCrashPoint::kAfterCheckpoint});
  fault::DaemonFaultInjector faults(plan);

  storage::MemoryBackend backend;
  daemon::DaemonConfig config = base_config(backend);
  config.faults = &faults;
  config.crash_hook = [&backend] { backend.crash(); };
  daemon::MonitorDaemon d(config, warehouse);
  const daemon::DaemonResult result = d.run();

  EXPECT_EQ(result.crash_restarts, 2u);
  EXPECT_EQ(result.hang_restarts, 0u);
  EXPECT_FALSE(result.gave_up);
  EXPECT_GT(result.replayed_alerts, 0u);
  EXPECT_EQ(result.epoch_verdicts, baseline_verdicts);
  EXPECT_EQ(daemon::render_alert_history(result.alerts), baseline);
  expect_monotonic_sequences(result.alerts);
}

TEST(MonitorDaemon, WatchdogKillsAndRestartsHungMonitor) {
  std::string baseline;
  {
    storage::MemoryBackend backend;
    daemon::MonitorDaemon d(base_config(backend), small_warehouse());
    baseline = daemon::render_alert_history(d.run().alerts);
  }

  fault::DaemonFaultPlan plan;
  plan.hang_epochs.push_back(1);
  fault::DaemonFaultInjector faults(plan);

  storage::MemoryBackend backend;
  daemon::DaemonConfig config = base_config(backend);
  config.faults = &faults;
  config.hang_timeout_ms = 50;
  daemon::MonitorDaemon d(config, small_warehouse());
  const daemon::DaemonResult result = d.run();

  EXPECT_EQ(result.hang_restarts, 1u);
  EXPECT_EQ(faults.hangs_delivered(), 1u);
  EXPECT_EQ(result.epochs_completed, 3u);
  EXPECT_FALSE(result.gave_up);
  ASSERT_EQ(result.events.size(), 1u);
  EXPECT_EQ(result.events[0].kind, daemon::DaemonEventKind::kHangRestart);
  EXPECT_EQ(result.events[0].epoch, 1u);
  EXPECT_EQ(daemon::render_alert_history(result.alerts), baseline);
}

TEST(MonitorDaemon, GivesUpLoudlyWhenRestartsExhaust) {
  fault::DaemonFaultPlan plan;
  for (int i = 0; i < 4; ++i) {
    plan.crashes.push_back({1, fault::DaemonCrashPoint::kEpochStart});
  }
  fault::DaemonFaultInjector faults(plan);

  storage::MemoryBackend backend;
  daemon::DaemonConfig config = base_config(backend);
  config.faults = &faults;
  config.max_restarts = 2;
  daemon::MonitorDaemon d(config, small_warehouse());
  const daemon::DaemonResult result = d.run();

  EXPECT_TRUE(result.gave_up);
  EXPECT_EQ(result.restarts, 3u);  // the attempt that exceeded the cap counts
  EXPECT_EQ(result.epochs_completed, 1u);  // epoch 0 committed before dying
  ASSERT_FALSE(result.events.empty());
  EXPECT_EQ(result.events.back().kind, daemon::DaemonEventKind::kGaveUp);
}

TEST(MonitorDaemon, ResumesAcrossProcessLives) {
  // One backend, two daemon lives: the first checkpoints 2 epochs, the
  // second opens the same journal and finishes 4 — and must match a daemon
  // that lived through all 4 epochs in one process, bit for bit.
  daemon::WarehouseConfig warehouse = small_warehouse();
  warehouse.churn.push_back(daemon::ChurnEvent{
      .epoch = 2, .enroll = 0, .decommission = 0, .steal = 6, .steal_from = 0});

  std::string baseline;
  {
    storage::MemoryBackend backend;
    daemon::DaemonConfig config = base_config(backend);
    config.epochs = 4;
    daemon::MonitorDaemon d(config, warehouse);
    baseline = daemon::render_alert_history(d.run().alerts);
  }

  storage::MemoryBackend backend;
  {
    daemon::DaemonConfig config = base_config(backend);
    config.epochs = 2;
    daemon::MonitorDaemon d(config, warehouse);
    const daemon::DaemonResult result = d.run();
    EXPECT_EQ(result.epochs_completed, 2u);
  }
  daemon::DaemonConfig config = base_config(backend);
  config.epochs = 4;
  daemon::MonitorDaemon d(config, warehouse);
  const daemon::DaemonResult result = d.run();

  EXPECT_EQ(result.epochs_completed, 4u);
  EXPECT_EQ(result.restarts, 0u);
  EXPECT_EQ(daemon::render_alert_history(result.alerts), baseline);
  expect_monotonic_sequences(result.alerts);
}

TEST(MonitorDaemon, ExternalAbortGivesUpInsteadOfRestarting) {
  // The external stop switch (DaemonConfig::abort — the service's drain
  // path) must not be treated as a crash to supervise: no restarts, no
  // backoff, just an early gave_up return.
  storage::MemoryBackend backend;
  daemon::DaemonConfig config = base_config(backend);
  std::atomic<bool> abort{true};  // stopped before the first epoch
  config.abort = &abort;
  daemon::MonitorDaemon d(config, small_warehouse());
  const daemon::DaemonResult result = d.run();

  EXPECT_TRUE(result.gave_up);
  EXPECT_EQ(result.epochs_completed, 0u);
  EXPECT_EQ(result.restarts, 0u);
  ASSERT_FALSE(result.events.empty());
  EXPECT_EQ(result.events.back().kind, daemon::DaemonEventKind::kGaveUp);
}

TEST(MonitorDaemon, ExternalAbortMidRunKeepsCheckpointedEpochsDurable) {
  storage::MemoryBackend backend;
  daemon::DaemonConfig config = base_config(backend);
  config.epochs = 1000000;  // far more than the abort window allows
  std::atomic<bool> abort{false};
  config.abort = &abort;
  daemon::MonitorDaemon d(config, small_warehouse());
  std::thread stopper([&abort] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    abort.store(true, std::memory_order_release);
  });
  const daemon::DaemonResult result = d.run();
  stopper.join();

  EXPECT_TRUE(result.gave_up);
  EXPECT_LT(result.epochs_completed, 1000000u);
  // Whatever was checkpointed before the stop is durable and scannable —
  // a later daemon resumes from it exactly as after a supervisor kill.
  const storage::DaemonJournalScan scan =
      storage::scan_daemon_journal(backend.read("daemon.journal"));
  EXPECT_TRUE(scan.header_valid);
  EXPECT_EQ(scan.dropped_bytes, 0u);
  EXPECT_GE(scan.records.size(), result.epochs_completed);
}

TEST(MonitorDaemon, StaleJournalIsQuarantinedNotReplayed) {
  storage::MemoryBackend backend;
  {
    daemon::DaemonConfig config = base_config(backend);
    config.epochs = 2;
    daemon::MonitorDaemon d(config, small_warehouse());
    EXPECT_EQ(d.run().epochs_completed, 2u);
  }

  // Same (seed, name), different monitoring plan: the recorded health
  // machines describe zones that no longer mean the same thing.
  daemon::WarehouseConfig changed = small_warehouse();
  changed.tolerance = 3;
  daemon::DaemonConfig config = base_config(backend);
  config.epochs = 2;
  daemon::MonitorDaemon d(config, changed);
  const daemon::DaemonResult result = d.run();

  // Monitoring restarted at epoch 0 and the refusal reached the operator.
  EXPECT_EQ(result.epochs_completed, 2u);
  EXPECT_EQ(result.replayed_alerts, 0u);
  ASSERT_FALSE(result.alerts.empty());
  EXPECT_EQ(result.alerts[0].kind,
            daemon::DaemonAlertKind::kStaleJournalQuarantined);
  EXPECT_EQ(result.alerts[0].sequence, 0u);
  EXPECT_EQ(result.alerts[0].epoch, 0u);
}

TEST(MonitorDaemon, PersistentlyDishonestReaderIsBenchedAndParoled) {
  // A k = 3 warehouse where zone 0's reader 1 forges "all present" every
  // epoch, over a real theft. The fused vote overrules it (verdicts stay
  // violated throughout), and the reader tier benches it: quarantined after
  // 2 suspect epochs, excluded from scans, paroled after the cooldown —
  // and, still dishonest, benched again.
  storage::MemoryBackend backend;
  obs::MetricsRegistry metrics;
  daemon::WarehouseConfig warehouse = small_warehouse();
  warehouse.fusion.readers = 3;
  warehouse.dishonest_readers.emplace_back(0, 1);
  warehouse.churn.push_back(daemon::ChurnEvent{
      .epoch = 0, .enroll = 0, .decommission = 0, .steal = 6, .steal_from = 0});

  daemon::DaemonConfig config = base_config(backend);
  config.epochs = 6;
  config.metrics = &metrics;
  config.debounce_epochs = 1;
  config.quarantine_after_epochs = 2;
  config.quarantine_cooldown_epochs = 2;

  daemon::MonitorDaemon d(config, warehouse);
  const daemon::DaemonResult result = d.run();

  // The forger never hides the theft: two honest readers outvote it in
  // every epoch, benched or not.
  ASSERT_EQ(result.epoch_verdicts.size(), 6u);
  for (const daemon::EpochVerdict verdict : result.epoch_verdicts) {
    EXPECT_EQ(verdict, daemon::EpochVerdict::kViolated);
  }

  // Epoch 0: violation latches + escalation (debounce = 1). Epoch 1: the
  // reader's second suspect epoch benches it (reader tier runs before the
  // zone tier, which quarantines the still-missing zone in the same
  // epoch). Epoch 3: cooldown served, paroled on faith. Epochs 4-5: it
  // forges again, two more suspect epochs, benched again.
  const std::vector<daemon::DaemonAlertKind> kinds = kinds_of(result.alerts);
  const std::vector<daemon::DaemonAlertKind> expected = {
      daemon::DaemonAlertKind::kZoneViolated,      // epoch 0
      daemon::DaemonAlertKind::kZoneEscalated,     // epoch 0
      daemon::DaemonAlertKind::kReaderQuarantined, // epoch 1
      daemon::DaemonAlertKind::kZoneQuarantined,   // epoch 1
      daemon::DaemonAlertKind::kReaderRecovered,   // epoch 3
      daemon::DaemonAlertKind::kReaderQuarantined, // epoch 5
  };
  EXPECT_EQ(kinds, expected);
  expect_monotonic_sequences(result.alerts);
  for (const daemon::DaemonAlert& alert : result.alerts) {
    if (alert.kind == daemon::DaemonAlertKind::kReaderQuarantined ||
        alert.kind == daemon::DaemonAlertKind::kReaderRecovered) {
      EXPECT_EQ(alert.zone, 0u);
      EXPECT_NE(alert.detail.find("reader 1"), std::string::npos);
    }
  }
  EXPECT_EQ(
      obs::catalog::fusion_readers_quarantined_total(metrics).value(), 2u);
}

TEST(MonitorDaemon, JournalRotationKeepsResumeO1AndHistoryIdentical) {
  // rotate_after = 2 folds the journal into [start][snapshot] every two
  // checkpoints, so the on-disk record count is bounded no matter how long
  // the daemon lives — and a resumed life must still reconstruct the exact
  // history an unrotated straight-through run produces.
  daemon::WarehouseConfig warehouse = small_warehouse();
  warehouse.churn.push_back(daemon::ChurnEvent{
      .epoch = 2, .enroll = 0, .decommission = 0, .steal = 6, .steal_from = 0});

  std::string baseline;
  std::vector<daemon::EpochVerdict> baseline_verdicts;
  {
    storage::MemoryBackend backend;
    daemon::DaemonConfig config = base_config(backend);
    config.epochs = 6;
    daemon::MonitorDaemon d(config, warehouse);
    const daemon::DaemonResult result = d.run();
    baseline = daemon::render_alert_history(result.alerts);
    baseline_verdicts = result.epoch_verdicts;
    const auto scan = storage::scan_daemon_journal(backend.read(
        daemon::DaemonConfig{}.journal_name));
    EXPECT_EQ(scan.records.size(), 7u);  // start + one checkpoint per epoch
  }

  storage::MemoryBackend backend;
  {
    daemon::DaemonConfig config = base_config(backend);
    config.epochs = 4;
    config.journal_rotate_after = 2;
    daemon::MonitorDaemon d(config, warehouse);
    EXPECT_EQ(d.run().epochs_completed, 4u);
  }
  // Epoch 4's checkpoint triggered the second rotation, so the journal a
  // resuming life opens is exactly [start][snapshot] — O(1) records to
  // replay, not O(epochs).
  {
    const auto scan = storage::scan_daemon_journal(backend.read(
        daemon::DaemonConfig{}.journal_name));
    ASSERT_EQ(scan.records.size(), 2u);
    EXPECT_TRUE(std::holds_alternative<storage::DaemonSnapshotRecord>(
        scan.records[1]));
    const auto& snapshot =
        std::get<storage::DaemonSnapshotRecord>(scan.records[1]);
    EXPECT_EQ(snapshot.verdicts.size(), 4u);
  }

  daemon::DaemonConfig config = base_config(backend);
  config.epochs = 6;
  config.journal_rotate_after = 2;
  daemon::MonitorDaemon d(config, warehouse);
  const daemon::DaemonResult result = d.run();

  EXPECT_EQ(result.epochs_completed, 6u);
  EXPECT_EQ(result.epoch_verdicts, baseline_verdicts);
  EXPECT_EQ(daemon::render_alert_history(result.alerts), baseline);
  expect_monotonic_sequences(result.alerts);
}

TEST(MonitorDaemon, TheftAlertNamesTheStolenTagsWhenDrillDownEnabled) {
  storage::MemoryBackend backend;
  daemon::WarehouseConfig warehouse = small_warehouse();
  warehouse.churn.push_back(daemon::ChurnEvent{
      .epoch = 1, .enroll = 0, .decommission = 0, .steal = 6, .steal_from = 0});
  warehouse.identify.enabled = true;

  daemon::MonitorDaemon d(base_config(backend), warehouse);
  const daemon::DaemonResult result = d.run();

  const daemon::DaemonAlert* violated = nullptr;
  for (const daemon::DaemonAlert& alert : result.alerts) {
    if (alert.kind == daemon::DaemonAlertKind::kZoneViolated) {
      EXPECT_EQ(violated, nullptr) << "violation must still latch once";
      violated = &alert;
    }
  }
  ASSERT_NE(violated, nullptr);
  EXPECT_EQ(violated->zone, 0u);
  // The drill-down named all 6 stolen tags and the detail says so.
  EXPECT_EQ(violated->missing_tags.size(), 6u);
  EXPECT_NE(violated->detail.find("identified 6 missing tag(s)"),
            std::string::npos);
  EXPECT_NE(violated->detail.find("[filter_first]"), std::string::npos);

  // The canonical rendering carries the names (one line per tag).
  const std::string history = daemon::render_alert_history(result.alerts);
  EXPECT_NE(history.find("    missing urn:epc:raw:"), std::string::npos);
  EXPECT_NE(history.find(violated->missing_tags[0].to_string()),
            std::string::npos);

  // And the journal made them durable: the checkpoint's alert record holds
  // the same list a fresh scan decodes back.
  const auto scan = storage::scan_daemon_journal(
      backend.read(daemon::DaemonConfig{}.journal_name));
  EXPECT_EQ(scan.version, 3u);
  bool found = false;
  for (const auto& record : scan.records) {
    const auto* checkpoint =
        std::get_if<storage::DaemonCheckpointRecord>(&record);
    if (checkpoint == nullptr) continue;
    for (const storage::DaemonAlertRecord& alert : checkpoint->alerts) {
      if (alert.kind ==
          static_cast<std::uint8_t>(daemon::DaemonAlertKind::kZoneViolated)) {
        found = true;
        ASSERT_EQ(alert.missing.size(), 6u);
        for (std::size_t i = 0; i < 6; ++i) {
          EXPECT_EQ(alert.missing[i], violated->missing_tags[i]);
        }
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(MonitorDaemon, KillResumeStaysBitIdenticalWithNamedTagAlerts) {
  // The acceptance scenario: crash on both sides of the checkpoint while
  // the drill-down is naming tags — the resumed history, named tags
  // included, must match an uncrashed daemon bit for bit.
  daemon::WarehouseConfig warehouse = small_warehouse();
  warehouse.churn.push_back(daemon::ChurnEvent{
      .epoch = 1, .enroll = 0, .decommission = 0, .steal = 6, .steal_from = 0});
  warehouse.identify.enabled = true;

  std::string baseline;
  std::vector<daemon::EpochVerdict> baseline_verdicts;
  {
    storage::MemoryBackend backend;
    daemon::MonitorDaemon d(base_config(backend), warehouse);
    const daemon::DaemonResult result = d.run();
    baseline = daemon::render_alert_history(result.alerts);
    baseline_verdicts = result.epoch_verdicts;
    ASSERT_NE(baseline.find("    missing urn:epc:raw:"), std::string::npos);
  }

  fault::DaemonFaultPlan plan;
  plan.crashes.push_back({1, fault::DaemonCrashPoint::kBeforeCheckpoint});
  plan.crashes.push_back({2, fault::DaemonCrashPoint::kAfterCheckpoint});
  fault::DaemonFaultInjector faults(plan);

  storage::MemoryBackend backend;
  daemon::DaemonConfig config = base_config(backend);
  config.faults = &faults;
  config.crash_hook = [&backend] { backend.crash(); };
  daemon::MonitorDaemon d(config, warehouse);
  const daemon::DaemonResult result = d.run();

  EXPECT_EQ(result.crash_restarts, 2u);
  EXPECT_FALSE(result.gave_up);
  EXPECT_EQ(result.epoch_verdicts, baseline_verdicts);
  EXPECT_EQ(daemon::render_alert_history(result.alerts), baseline);
  expect_monotonic_sequences(result.alerts);
}

// Byte-level helpers for forging a format-2 daemon journal (the layout an
// old build actually wrote: v3 minus the per-alert missing-tag list).
std::uint32_t le32_at(const std::string& b, std::size_t at) {
  return static_cast<std::uint32_t>(
      static_cast<unsigned char>(b[at]) |
      (static_cast<unsigned char>(b[at + 1]) << 8) |
      (static_cast<unsigned char>(b[at + 2]) << 16) |
      (static_cast<unsigned char>(b[at + 3]) << 24));
}

void append_daemon_frame(std::string& out, std::string_view payload) {
  const std::uint64_t sum = hash::fnv1a64(
      std::as_bytes(std::span(payload.data(), payload.size())));
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((len >> (8 * i)) & 0xffU));
  }
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((sum >> (8 * i)) & 0xffU));
  }
  out.append(payload);
}

// Strips each alert's (empty) missing-list count from a v3 checkpoint
// payload, yielding the byte-identical v2 encoding. Layout: header 22 bytes
// (kind u8, epoch u64, verdict u8, next_seq u64, zones u32), per-zone
// health 22 + 13*readers bytes, alerts u32, then per alert seq u64 +
// kind u8 + epoch u64 + zone u64 + detail (u32 len + bytes) +
// missing u32 — the last field being what v2 lacks.
std::string downgrade_checkpoint_payload(std::string payload) {
  std::size_t at = 1 + 8 + 1 + 8;
  const std::uint32_t zones = le32_at(payload, at);
  at += 4;
  for (std::uint32_t z = 0; z < zones; ++z) {
    const std::uint32_t readers = le32_at(payload, at + 18);
    at += 22 + 13 * static_cast<std::size_t>(readers);
  }
  const std::uint32_t alerts = le32_at(payload, at);
  at += 4;
  for (std::uint32_t a = 0; a < alerts; ++a) {
    at += 8 + 1 + 8 + 8;                       // seq, kind, epoch, zone
    at += 4 + le32_at(payload, at);            // detail
    EXPECT_EQ(le32_at(payload, at), 0u);       // empty missing list
    payload.erase(at, 4);
  }
  EXPECT_EQ(at, payload.size());
  return payload;
}

TEST(MonitorDaemon, ResumesALegacyFormat2JournalAndRewritesIt) {
  // A daemon that checkpointed under the format-2 magic must still resume
  // (alerts decode with empty missing lists), and open() must rewrite the
  // journal to the current format before appending anything: v3 frames
  // under a v2 magic would corrupt every later scan.
  daemon::WarehouseConfig warehouse = small_warehouse();
  warehouse.churn.push_back(daemon::ChurnEvent{
      .epoch = 1, .enroll = 0, .decommission = 0, .steal = 6, .steal_from = 0});

  std::string baseline;
  {
    storage::MemoryBackend backend;
    daemon::DaemonConfig config = base_config(backend);
    config.epochs = 4;
    daemon::MonitorDaemon d(config, warehouse);
    baseline = daemon::render_alert_history(d.run().alerts);
  }

  storage::MemoryBackend backend;
  {
    daemon::DaemonConfig config = base_config(backend);
    config.epochs = 2;
    daemon::MonitorDaemon d(config, warehouse);
    ASSERT_EQ(d.run().epochs_completed, 2u);
  }

  // Downgrade the journal on disk to format 2: swap the magic and strip
  // the zero missing-count after every alert detail, re-framing each
  // record's [len][checksum] header.
  const std::string name = daemon::DaemonConfig{}.journal_name;
  const std::string bytes = backend.read(name);
  ASSERT_EQ(storage::scan_daemon_journal(bytes).version, 3u);
  std::string v2(storage::kDaemonJournalMagicV2);
  std::size_t pos = storage::kDaemonJournalMagic.size();
  while (pos < bytes.size()) {
    const std::uint32_t len = le32_at(bytes, pos);
    std::string payload = bytes.substr(pos + 12, len);
    if (!payload.empty() && static_cast<std::uint8_t>(payload[0]) == 2) {
      payload = downgrade_checkpoint_payload(std::move(payload));
    }
    append_daemon_frame(v2, payload);
    pos += 12 + len;
  }
  backend.remove(name);
  backend.append(name, v2);
  backend.flush(name);

  // Sanity: the downgraded journal scans as format 2 with intact records.
  {
    const auto scan = storage::scan_daemon_journal(backend.read(name));
    EXPECT_EQ(scan.version, 2u);
    EXPECT_EQ(scan.dropped_bytes, 0u);
    ASSERT_EQ(scan.records.size(), 3u);  // start + 2 checkpoints
  }

  // The second life resumes it and finishes epochs 2..3; the history must
  // match the straight-through baseline, and the journal on disk must now
  // carry the current magic (rotated on open, before any append).
  daemon::DaemonConfig config = base_config(backend);
  config.epochs = 4;
  daemon::MonitorDaemon d(config, warehouse);
  const daemon::DaemonResult result = d.run();
  EXPECT_EQ(result.epochs_completed, 4u);
  EXPECT_EQ(daemon::render_alert_history(result.alerts), baseline);
  const auto scan = storage::scan_daemon_journal(backend.read(name));
  EXPECT_EQ(scan.version, 3u);
  EXPECT_EQ(scan.dropped_bytes, 0u);
}

TEST(MonitorDaemon, MetricsCountEpochsAlertsAndRestarts) {
  fault::DaemonFaultPlan plan;
  plan.crashes.push_back({1, fault::DaemonCrashPoint::kBeforeCheckpoint});
  fault::DaemonFaultInjector faults(plan);

  storage::MemoryBackend backend;
  obs::MetricsRegistry metrics;
  daemon::WarehouseConfig warehouse = small_warehouse();
  warehouse.churn.push_back(daemon::ChurnEvent{
      .epoch = 1, .enroll = 0, .decommission = 0, .steal = 6, .steal_from = 0});
  daemon::DaemonConfig config = base_config(backend);
  config.faults = &faults;
  config.crash_hook = [&backend] { backend.crash(); };
  config.metrics = &metrics;
  daemon::MonitorDaemon d(config, warehouse);
  const daemon::DaemonResult result = d.run();

  EXPECT_EQ(obs::catalog::daemon_epochs_total(metrics, "intact").value(), 1u);
  EXPECT_EQ(obs::catalog::daemon_epochs_total(metrics, "violated").value(),
            2u);
  EXPECT_EQ(obs::catalog::daemon_checkpoints_total(metrics).value(), 3u);
  EXPECT_EQ(obs::catalog::daemon_restarts_total(metrics, "crash").value(),
            1u);
  EXPECT_EQ(
      obs::catalog::daemon_alerts_total(metrics, "zone_violated").value(),
      1u);
  // Replayed alerts are counted separately, never re-counted as raised.
  EXPECT_EQ(obs::catalog::daemon_replayed_alerts_total(metrics).value(),
            result.replayed_alerts);
}

}  // namespace
