// Pluggable missing-tag IDENTIFICATION protocol family.
//
// Detection (TRP/UTRP) proves *that* tags are missing; identification names
// *which* ones — still without any tag ever transmitting its ID. Two family
// members share one seam:
//
//   * kIterative — the original identifier (protocol/identify.h): per round
//     a framed challenge (f, r); an expected-occupied slot observed EMPTY
//     proves its candidate mappers absent, an occupied slot with exactly one
//     possible replier proves that tag present. Proven-present tags cannot
//     be silenced, so frames stay ~n wide: O(n log n) slots — the honest
//     baseline that loses to collect-all on air time.
//
//   * kFilterFirst — the member that wins (follow-up literature: filtering
//     in arXiv 1512.05228, tree-splitting + early-breaking estimation in
//     arXiv 2308.09484). Three ideas compose:
//       1. FILTER: at the end of each round the reader broadcasts an ACK
//          bitmap of the slots whose reply proved a tag present; tags that
//          answered in an ACKed slot silence themselves for the rest of the
//          campaign. Frames then shrink with the unknowns instead of
//          staying population-sized.
//       2. ESTIMATE: the zero-estimator (src/estimate) on each frame's
//          empty count predicts how many tags still answer; the next frame
//          is sized to the estimated repliers, so a mostly-stolen zone
//          collapses to tiny frames instead of burning empty slots.
//       3. TREE-SPLIT: once few unknowns remain, ambiguous (collision)
//          slots are split in-round by a directed prefix walk
//          (protocol/tree_walk.h) that only queries prefixes covering a
//          candidate — killing the O(log n) re-framing tail.
//
// Verdict soundness on lossy channels: the channel can lose replies but
// never fabricate them, so "present" proofs (an occupied slot with a sole
// possible replier) are sound as-is. "Missing" verdicts require
// `confirmations_required` CONSECUTIVE rounds of absence evidence; any
// observation consistent with presence resets the streak. A present tag is
// falsely accused only if its reply is independently lost in C consecutive
// rounds, so P(any false accusation) <= n · max_rounds · loss^C, and C is
// derived from IdentifyConfig::accusation_error. False clearances need a
// fabricated reply and cannot happen at all. Tags still unclassified at the
// round cap are reported `unresolved`, never guessed.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "hash/slot_hash.h"
#include "obs/metrics.h"
#include "radio/channel.h"
#include "radio/timing.h"
#include "tag/tag.h"
#include "tag/tag_id.h"
#include "util/random.h"

namespace rfid::protocol {

enum class IdentifyProtocolKind : std::uint8_t {
  kIterative = 0,
  kFilterFirst = 1,
};

[[nodiscard]] std::string_view to_string(IdentifyProtocolKind kind) noexcept;

struct IdentifyConfig {
  /// Per-round frame size as a multiple of the tags expected to reply.
  /// Load factor 1 is near-optimal; larger trades slots for rounds.
  double frame_load = 1.0;
  /// Give up after this many rounds (0 tags left unknown on exit is the
  /// common case well before this cap).
  std::uint32_t max_rounds = 64;
  radio::ChannelModel channel = {};
  /// Campaign-wide false-accusation probability budget on a lossy channel;
  /// drives the derived confirmation streak (see required_confirmations).
  double accusation_error = 1e-9;
  /// Explicit override for the absence-confirmation streak; 0 derives it
  /// from the channel loss rate and `accusation_error`.
  std::uint32_t confirmations = 0;
  /// Filter-first only: once at most this many tags remain unknown,
  /// collision slots are tree-split in-round instead of re-framed.
  std::uint32_t tree_split_below = 512;
};

struct IdentifyResult {
  std::vector<tag::TagId> missing;     // proven absent
  std::vector<tag::TagId> present;     // proven present
  std::vector<tag::TagId> unresolved;  // round cap hit before classification
  std::uint64_t rounds = 0;
  /// Framed slots plus tree prefix queries — the paper-style slot count.
  std::uint64_t total_slots = 0;
  std::uint64_t frame_empty_slots = 0;
  std::uint64_t frame_reply_slots = 0;
  std::uint64_t tree_queries = 0;
  std::uint64_t tree_empty_queries = 0;
  /// Reader→tag ACK-filter bits broadcast (filter-first only).
  std::uint64_t filter_bits = 0;
  /// The absence streak a missing verdict needed (1 on an ideal channel).
  std::uint32_t confirmations_required = 1;
  /// Zero-estimator guess at the missing count after the first frame.
  double estimated_missing = 0.0;

  /// Honest air time of the whole campaign under `timing`.
  [[nodiscard]] double elapsed_us(const radio::TimingModel& timing) const noexcept {
    return timing.identify_us(frame_empty_slots, frame_reply_slots,
                              tree_empty_queries,
                              tree_queries - tree_empty_queries, filter_bits,
                              rounds);
  }
};

/// Consecutive absence observations required before accusing a tag, derived
/// from the channel loss rate so that the campaign-wide false-accusation
/// probability stays below `config.accusation_error`. 1 on an ideal channel.
[[nodiscard]] std::uint32_t required_confirmations(
    const IdentifyConfig& config, std::size_t enrolled_count) noexcept;

/// One member of the identification family. Implementations are stateless
/// across campaigns (safe to share between zones) and deterministic given
/// the RNG stream.
class IdentificationProtocol {
 public:
  virtual ~IdentificationProtocol() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Runs one identification campaign: `enrolled` is the server's ID list,
  /// `present_tags` the physically present population the reader can reach.
  /// `rng` drives challenge randomness (and channel noise, if any).
  [[nodiscard]] virtual IdentifyResult identify(
      std::span<const tag::TagId> enrolled,
      std::span<const tag::Tag> present_tags, const hash::SlotHasher& hasher,
      util::Rng& rng) const = 0;

  [[nodiscard]] const IdentifyConfig& config() const noexcept {
    return config_;
  }

 protected:
  /// Validates and stores the campaign configuration (throws
  /// std::invalid_argument on nonsense).
  explicit IdentificationProtocol(IdentifyConfig config);

  IdentifyConfig config_;
};

/// Builds a family member. Throws std::invalid_argument on a bad config.
[[nodiscard]] std::unique_ptr<IdentificationProtocol>
make_identification_protocol(IdentifyProtocolKind kind, IdentifyConfig config);

/// Records one campaign into the identify_* metric family (obs/catalog.h).
void record_identify_metrics(obs::MetricsRegistry& registry,
                             std::string_view protocol,
                             const IdentifyResult& result);

}  // namespace rfid::protocol
