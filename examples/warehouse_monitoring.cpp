// Warehouse monitoring: the paper's motivating scenario (Sec. 1), scaled up
// and driven end to end through the fleet orchestrator.
//
// A retailer's back-room server watches several heterogeneous inventories
// at once — the "different sized groups" flexibility the paper claims over
// yoking-proof schemes — but a real warehouse is also *sharded*: a reader's
// field covers one aisle or cage, not the whole floor. So each inventory is
// planned into zones (server::plan_groups, Σ m_i = M pigeonhole guarantee),
// and the fleet executes every zone session concurrently on a deadline-aware
// work-stealing pool, aggregating one global verdict:
//
//   * "razor-blades"  — 60 high-value items, zero tolerance, 99% confidence,
//                       one trusted dock reader (TRP);
//   * "apparel"       — 1200 garments, M = 20, 95%, trusted readers, zones
//                       of <= 300 (TRP); shoplifters hit this one;
//   * "electronics"   — 400 boxed TVs, M = 5, 95%, UNtrusted night-shift
//                       readers with a c = 20 adversary budget and an
//                       Alg. 5 deadline (UTRP); an employee steals six;
//   * "pharmacy"      — 240 regulated items, M = 2, 99%, trusted readers;
//                       one cage reader crashes mid-scan and the fleet
//                       requeues it (the retry recovers the zone);
//   * "cold-storage"  — 40 items behind a dead uplink: every attempt times
//                       out, the zone is escalated as a fleet alert, and
//                       the global verdict degrades to "inconclusive"
//                       territory (outranked here by the thefts).
//
// The run is seeded and deterministic: the printed summary is identical no
// matter how many worker threads execute it.
#include <cstdio>
#include <string>
#include <utility>

#include "rfidmon.h"

namespace {

using namespace rfid;

fleet::InventorySpec plan_inventory(const char* name, tag::TagSet tags,
                                    std::uint64_t tolerance, double alpha,
                                    std::uint64_t zone_capacity) {
  fleet::InventorySpec spec;
  spec.name = name;
  spec.plan = server::plan_groups({.total_tags = tags.size(),
                                   .total_tolerance = tolerance,
                                   .alpha = alpha,
                                   .max_group_size = zone_capacity});
  spec.tags = std::move(tags);
  spec.alpha = alpha;
  return spec;
}

}  // namespace

int main() {
  util::Rng rng(7);

  obs::MetricsRegistry metrics;
  obs::SessionLog session_log(128);
  storage::MemoryBackend journal_store;

  fleet::FleetOrchestrator orchestrator({.seed = 7,
                                         .threads = 4,
                                         .max_zone_attempts = 3,
                                         .fleet_name = "back-room",
                                         .metrics = &metrics,
                                         .session_log = &session_log,
                                         .journal_backend = &journal_store});

  // --- razor-blades: small, zero tolerance, one zone --------------------
  orchestrator.submit(plan_inventory(
      "razor-blades", tag::TagSet::make_random(60, rng), 0, 0.99, 0));

  // --- apparel: 1200 garments in 4 zones; 25 walk out -------------------
  {
    auto spec = plan_inventory("apparel", tag::TagSet::make_random(1200, rng),
                               20, 0.95, 300);
    for (std::uint64_t i = 0; i < 25; ++i) {
      spec.stolen.push_back(i * 37 % 1200);  // scattered across the floor
    }
    orchestrator.submit(std::move(spec));
  }

  // --- electronics: untrusted night reader, deadline, 6 TVs stolen ------
  {
    auto spec = plan_inventory(
        "electronics", tag::TagSet::make_random(400, rng), 5, 0.95, 100);
    spec.protocol = fleet::Protocol::kUtrp;
    spec.comm_budget = 20;
    spec.session.utrp_deadline_us = 30e6;  // Alg. 5: report within 30 s
    for (std::uint64_t i = 0; i < 6; ++i) spec.stolen.push_back(i * 61 % 400);
    orchestrator.submit(std::move(spec));
  }

  // --- pharmacy: a reader crashes mid-scan; the fleet requeues the zone --
  {
    auto spec = plan_inventory(
        "pharmacy", tag::TagSet::make_random(240, rng), 2, 0.99, 60);
    spec.zone_faults.emplace_back(
        1, fault::parse_fault_plan("crash 10000 never\n"));
    orchestrator.submit(std::move(spec));
  }

  // --- cold-storage: dead uplink, every attempt exhausts its retries ----
  {
    auto spec = plan_inventory(
        "cold-storage", tag::TagSet::make_random(40, rng), 1, 0.95, 0);
    spec.session.uplink.drop_prob = 1.0;
    spec.session.max_retries = 2;
    orchestrator.submit(std::move(spec));
  }

  const fleet::FleetResult result = orchestrator.run();

  std::printf("%s\n", fleet::summary(result).c_str());
  std::printf("scheduler: %u worker thread(s)\n", result.threads);
  std::printf("journal: %zu bytes (replayable after a crash mid-run)\n",
              journal_store.read("fleet.journal").size());

  // The verdict line a night-shift operator would page on.
  switch (result.verdict) {
    case fleet::GlobalVerdict::kIntact:
      std::printf("\nwarehouse verified intact\n");
      break;
    case fleet::GlobalVerdict::kViolated:
      std::printf("\nTHEFT DETECTED — see per-inventory verdicts above\n");
      break;
    case fleet::GlobalVerdict::kInconclusive:
      std::printf("\ncoverage incomplete — dispatch a physical audit to the "
                  "escalated zones\n");
      break;
  }
  return result.verdict == fleet::GlobalVerdict::kIntact ? 0 : 1;
}
