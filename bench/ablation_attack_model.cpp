// Ablation — analysis-faithful vs mechanically-faithful UTRP attack.
//
// The paper's Theorems 3–5 model the adversary on a *static* frame (one slot
// pick per tag, no re-seed dynamics); Fig. 7 evidently simulates that model.
// This bench runs both adversaries on identical populations:
//   * static  — run_utrp_static_model_attack (the paper's model),
//   * mechanical — run_utrp_split_attack (real re-seeding walk, counters,
//     budget spent on R1's empty-slot waits).
// The mechanical attack faces a slightly harder game: a stolen tag hides
// only if every one of its (re-seeded) replies coincides with a remaining
// tag's slot, so its detection rate should sit at or above the static one.
// The gap is the model error the paper's 5–10 slack slots paper over.
#include <cstdint>

#include "attack/utrp_attack.h"
#include "bench_common.h"
#include "math/frame_optimizer.h"
#include "protocol/utrp.h"
#include "sim/trial_runner.h"
#include "tag/tag_set.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace rfid;
  auto opt = bench::parse_figure_options(argc, argv);
  opt.n_step = std::max<std::uint64_t>(opt.n_step, 400);
  const sim::TrialRunner runner(opt.threads);
  const hash::SlotHasher hasher;

  constexpr std::uint64_t kTolerance = 10;
  bench::banner("Ablation: attack-model comparison, m = " +
                std::to_string(kTolerance) + ", c = " +
                std::to_string(opt.budget) + ", " +
                std::to_string(opt.trials) + " trials/point");

  util::Table table({"n", "frame_f", "static_detect", "mechanical_detect",
                     "gap"});
  for (const std::uint64_t n : bench::tag_count_sweep(opt)) {
    if (kTolerance + 1 > n) continue;
    const auto plan =
        math::optimize_utrp_frame(n, kTolerance, opt.alpha, opt.budget);
    const protocol::MonitoringPolicy policy{.tolerated_missing = kTolerance,
                                            .confidence = opt.alpha};

    const auto static_result = runner.run_boolean(
        opt.trials, util::derive_seed(opt.seed, n, 1),
        [&](std::uint64_t, util::Rng& rng) {
          tag::TagSet set = tag::TagSet::make_random(n, rng);
          const tag::TagSet stolen = set.steal_random(kTolerance + 1, rng);
          return attack::run_utrp_static_model_attack(set.tags(), stolen.tags(),
                                                      hasher, plan.frame_size,
                                                      rng(), opt.budget)
              .detected;
        });

    const auto mech_result = runner.run_boolean(
        opt.trials, util::derive_seed(opt.seed, n, 2),
        [&](std::uint64_t, util::Rng& rng) {
          tag::TagSet set = tag::TagSet::make_random(n, rng);
          // Inject the pre-solved plan: re-running the Eq. 3 optimizer per
          // trial would dominate the bench.
          const protocol::UtrpServer server(set, policy, opt.budget, plan);
          tag::TagSet stolen = set.steal_random(kTolerance + 1, rng);
          const auto c = server.issue_challenge(rng);
          const auto attack = attack::run_utrp_split_attack(
              set.tags(), stolen.tags(), hasher, c, opt.budget);
          return !server.verify(c, attack.forged).intact;
        });

    table.begin_row();
    table.add_cell(static_cast<long long>(n));
    table.add_cell(static_cast<long long>(plan.frame_size));
    table.add_cell(static_result.proportion(), 4);
    table.add_cell(mech_result.proportion(), 4);
    table.add_cell(mech_result.proportion() - static_result.proportion(), 4);
  }
  bench::emit(table, opt);
  return 0;
}
