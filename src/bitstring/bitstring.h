// The protocol artifact exchanged between reader and server: a frame-length
// bitstring with one bit per ALOHA slot (1 = at least one tag replied).
//
// Bitstring is a fixed-length dynamic bitset with the algebra the protocols
// and attacks need: OR (Alg. 4 combines two partial scans), XOR/difference
// (server-side verification), population count, and hex round-tripping for
// the wire format.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace rfid::bits {

class Bitstring {
 public:
  /// An all-zero bitstring of `size` bits.
  explicit Bitstring(std::size_t size = 0);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Reads bit `pos`; pos must be < size().
  [[nodiscard]] bool test(std::size_t pos) const;
  void set(std::size_t pos, bool value = true);
  void reset(std::size_t pos) { set(pos, false); }
  void clear() noexcept;  // zero all bits, keep the size

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const noexcept;

  /// Index of the first bit where *this and other differ, or nullopt if the
  /// strings are identical. Sizes must match.
  [[nodiscard]] std::optional<std::size_t> first_difference(const Bitstring& other) const;

  /// Number of differing bit positions (Hamming distance). Sizes must match.
  [[nodiscard]] std::size_t hamming_distance(const Bitstring& other) const;

  /// In-place bitwise algebra; sizes must match.
  Bitstring& operator|=(const Bitstring& other);
  Bitstring& operator&=(const Bitstring& other);
  Bitstring& operator^=(const Bitstring& other);

  [[nodiscard]] friend Bitstring operator|(Bitstring a, const Bitstring& b) {
    a |= b;
    return a;
  }
  [[nodiscard]] friend Bitstring operator&(Bitstring a, const Bitstring& b) {
    a &= b;
    return a;
  }
  [[nodiscard]] friend Bitstring operator^(Bitstring a, const Bitstring& b) {
    a ^= b;
    return a;
  }

  [[nodiscard]] bool operator==(const Bitstring& other) const noexcept = default;

  /// Hex encoding of the underlying words (lowercase, little-endian word
  /// order, padded); to_hex/from_hex round-trip exactly.
  [[nodiscard]] std::string to_hex() const;
  [[nodiscard]] static Bitstring from_hex(std::size_t size, const std::string& hex);

  /// "0101..." rendering, index 0 first — handy in tests and examples.
  [[nodiscard]] std::string to_binary_string() const;

  /// Raw 64-bit storage words, bit i living at word i/64, bit i%64. The
  /// mutable overload is the seam the bulk kernels scatter through
  /// (tag/columnar.h): callers must never set a bit at or beyond size() —
  /// the tail-masking invariant behind count()/equality is not re-checked.
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept {
    return words_;
  }
  [[nodiscard]] std::span<std::uint64_t> words() noexcept { return words_; }

  /// Bits per storage word (the granularity of words()).
  static constexpr std::size_t kBitsPerWord = 64;

 private:
  static constexpr std::size_t kWordBits = 64;
  [[nodiscard]] static std::size_t word_count(std::size_t bits) noexcept {
    return (bits + kWordBits - 1) / kWordBits;
  }
  void check_same_size(const Bitstring& other) const;
  /// Zeroes bits beyond size_ in the last word (kept as an invariant so
  /// count()/equality can operate on whole words).
  void mask_tail() noexcept;

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace rfid::bits
