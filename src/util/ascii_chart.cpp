#include "util/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/expect.h"
#include "util/table.h"

namespace rfid::util {

std::string render_ascii_chart(const std::vector<double>& xs,
                               const std::vector<ChartSeries>& series,
                               const ChartOptions& options) {
  RFID_EXPECT(xs.size() >= 2, "need at least two x positions");
  RFID_EXPECT(!series.empty(), "need at least one series");
  for (const auto& s : series) {
    RFID_EXPECT(s.ys.size() == xs.size(), "series length mismatch");
  }
  RFID_EXPECT(options.width >= 8 && options.height >= 4, "chart too small");

  const bool has_reference = options.reference_y != ChartOptions::kNoReference;
  double y_min = has_reference ? options.reference_y : series[0].ys[0];
  double y_max = y_min;
  for (const auto& s : series) {
    for (const double y : s.ys) {
      y_min = std::min(y_min, y);
      y_max = std::max(y_max, y);
    }
  }
  if (y_max - y_min < 1e-12) {
    y_max += 1.0;  // flat data: give the range some thickness
    y_min -= 1.0;
  }
  // A little headroom so extremes don't sit on the border rows.
  const double pad = (y_max - y_min) * 0.05;
  y_min -= pad;
  y_max += pad;

  const std::size_t rows = options.height;
  const std::size_t cols = options.width;
  std::vector<std::string> grid(rows, std::string(cols, ' '));

  const auto col_of = [&](std::size_t index) {
    return static_cast<std::size_t>(
        std::llround(static_cast<double>(index) *
                     static_cast<double>(cols - 1) /
                     static_cast<double>(xs.size() - 1)));
  };
  const auto row_of = [&](double y) {
    const double t = (y - y_min) / (y_max - y_min);  // 0 bottom .. 1 top
    const auto r = static_cast<std::size_t>(
        std::llround((1.0 - t) * static_cast<double>(rows - 1)));
    return std::min(r, rows - 1);
  };

  if (has_reference) {
    const std::size_t r = row_of(options.reference_y);
    for (std::size_t c = 0; c < cols; ++c) grid[r][c] = '-';
  }
  for (const auto& s : series) {
    for (std::size_t i = 0; i < xs.size(); ++i) {
      grid[row_of(s.ys[i])][col_of(i)] = s.glyph;
    }
  }

  std::ostringstream os;
  if (!options.title.empty()) os << options.title << '\n';
  const std::string top_label = format_double(y_max, 2);
  const std::string bottom_label = format_double(y_min, 2);
  const std::size_t label_width = std::max(top_label.size(), bottom_label.size());

  for (std::size_t r = 0; r < rows; ++r) {
    std::string label(label_width, ' ');
    if (r == 0) label = std::string(label_width - top_label.size(), ' ') + top_label;
    if (r == rows - 1) {
      label = std::string(label_width - bottom_label.size(), ' ') + bottom_label;
    }
    os << label << " |" << grid[r] << '\n';
  }
  os << std::string(label_width, ' ') << " +" << std::string(cols, '-') << '\n';
  os << std::string(label_width, ' ') << "  " << format_double(xs.front(), 0)
     << std::string(cols > 16 ? cols - 16 : 1, ' ') << format_double(xs.back(), 0)
     << '\n';
  os << "legend:";
  for (const auto& s : series) os << "  " << s.glyph << " = " << s.name;
  if (has_reference) {
    os << "  - = " << format_double(options.reference_y, 2) << " reference";
  }
  os << '\n';
  return os.str();
}

}  // namespace rfid::util
