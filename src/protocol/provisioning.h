// Challenge pre-provisioning (Sec. 4.2): "the server can either communicate
// a new (f, r) each time the reader executes TRP, or the server can issue a
// list of different (f, r) pairs to the reader ahead of time."
//
// The security obligation that comes with the second option is single-use:
// a challenge whose bitstring has been seen must never verify again,
// otherwise the replay attack of Sec. 5.1 returns through the side door.
// ChallengeBook enforces that: each pre-issued challenge verifies exactly
// once; a second submission — identical or not — is rejected as a replay,
// and the book tracks how much budget remains so operators can re-provision
// before a disconnected site runs dry.
#pragma once

#include <cstdint>
#include <vector>

#include "protocol/trp.h"

namespace rfid::protocol {

class TrpChallengeBook {
 public:
  /// Pre-issues `count` challenges from `server`. The book keeps a reference
  /// to the server for verification; it must not outlive it.
  TrpChallengeBook(const TrpServer& server, std::size_t count, util::Rng& rng);

  [[nodiscard]] std::size_t size() const noexcept { return challenges_.size(); }
  [[nodiscard]] std::size_t remaining() const noexcept { return remaining_; }
  [[nodiscard]] bool used(std::size_t index) const;
  /// The pre-issued list, e.g. to ship to a disconnected reader.
  [[nodiscard]] const std::vector<TrpChallenge>& challenges() const noexcept {
    return challenges_;
  }

  /// One-shot verification of the bitstring for challenge `index`.
  /// A second call for the same index throws std::invalid_argument —
  /// accepting it would re-admit the replay attack.
  [[nodiscard]] Verdict verify_once(std::size_t index,
                                    const bits::Bitstring& reported);

 private:
  const TrpServer& server_;
  std::vector<TrpChallenge> challenges_;
  std::vector<bool> used_;
  std::size_t remaining_;
};

}  // namespace rfid::protocol
