// Golden-file lockdown of the exposition formats. One fully seeded scenario
// — a TRP wire session under injected faults, a UTRP wire session, and a
// durable server that survives bit rot on its journal tail — is rendered to
// Prometheus text and JSON and compared byte-for-byte against
// tests/golden/metrics_*.txt. Any drift in the metric catalog, the counter
// semantics, or the renderers shows up as a diff here.
//
// After an INTENTIONAL change, regenerate with scripts/regen_golden.sh
// (which runs this binary with RFIDMON_REGEN_GOLDEN=1) and review the diff
// like any other code change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <vector>

#include "fault/fault.h"
#include "hash/slot_hash.h"
#include "obs/expose.h"
#include "obs/metrics.h"
#include "obs/session_log.h"
#include "obs/trace.h"
#include "protocol/identification.h"
#include "protocol/trp.h"
#include "protocol/utrp.h"
#include "server/inventory_server.h"
#include "sim/event_queue.h"
#include "storage/backend.h"
#include "storage/durable_server.h"
#include "tag/tag_set.h"
#include "util/random.h"
#include "wire/session.h"

#ifndef RFIDMON_GOLDEN_DIR
#error "RFIDMON_GOLDEN_DIR must point at tests/golden (set by CMake)"
#endif

namespace {

using namespace rfid;

/// Deterministic end-to-end scenario. Every random stream is seeded, the
/// tracer runs on the event-queue clock, and the storage layer gets a manual
/// clock — nothing here reads wall time, so the rendered output is stable
/// across runs and machines.
struct Scenario {
  obs::MetricsRegistry registry;
  obs::SessionLog session_log{8};

  void run() {
    sim::EventQueue queue;
    obs::Tracer tracer([&queue] { return queue.now(); });

    // --- TRP session over faulty links -------------------------------
    {
      util::Rng rng(1001);
      const tag::TagSet set = tag::TagSet::make_random(150, rng);
      protocol::TrpServer server(set.ids(),
                                 {.tolerated_missing = 3, .confidence = 0.95});
      server.set_metrics(&registry);
      const fault::FaultPlan plan = fault::parse_fault_plan(
          "seed 77\n"
          "burst 0.3 0.3\n"
          "corrupt 0.1\n"
          "duplicate 0.3\n");
      wire::SessionConfig config;
      config.max_retries = 30;
      config.faults = &plan;
      config.metrics = &registry;
      config.tracer = &tracer;
      config.session_log = &session_log;
      config.group_name = "shelf-razors";
      const auto outcome =
          wire::run_trp_session(queue, server, set.tags(), 3, config, rng);
      ASSERT_TRUE(outcome.completed);
    }

    // --- UTRP session on clean links ---------------------------------
    {
      util::Rng rng(1002);
      tag::TagSet set = tag::TagSet::make_random(80, rng);
      protocol::UtrpServer server(
          set, {.tolerated_missing = 2, .confidence = 0.9}, 20);
      server.set_metrics(&registry);
      wire::SessionConfig config;
      config.metrics = &registry;
      config.tracer = &tracer;
      config.session_log = &session_log;
      config.group_name = "pallet-area";
      config.utrp_deadline_us = 10e6;
      const auto outcome =
          wire::run_utrp_session(queue, server, set.tags(), 2, config, rng);
      ASSERT_TRUE(outcome.completed);
    }

    // --- Identification campaign (the drill-down metric family) ------
    {
      util::Rng rng(1004);
      tag::TagSet set = tag::TagSet::make_random(120, rng);
      const std::vector<tag::TagId> enrolled = set.ids();
      (void)set.steal_random(5, rng);
      const hash::SlotHasher hasher;
      const auto identifier = protocol::make_identification_protocol(
          protocol::IdentifyProtocolKind::kFilterFirst, {});
      const protocol::IdentifyResult result =
          identifier->identify(enrolled, set.tags(), hasher, rng);
      ASSERT_EQ(result.missing.size(), 5u);
      ASSERT_TRUE(result.unresolved.empty());
      protocol::record_identify_metrics(registry, identifier->name(), result);
    }

    // --- Durable server: rounds, rotation, bit rot, healed recovery --
    storage::MemoryBackend backend;
    {
      util::Rng rng(1003);
      const tag::TagSet set = tag::TagSet::make_random(60, rng);
      double now = 0.0;
      storage::DurabilityConfig dcfg;
      dcfg.metrics = &registry;
      dcfg.clock = [&now] { return now += 125.0; };
      storage::DurableInventoryServer durable(backend, dcfg);
      server::GroupConfig cfg;
      cfg.name = "backroom";
      cfg.policy = {.tolerated_missing = 1, .confidence = 0.9};
      const auto id = durable.enroll(set, cfg);
      const protocol::TrpServer oracle(set.ids(), cfg.policy);
      for (int round = 0; round < 2; ++round) {
        const auto challenge = durable.challenge_trp(id, rng);
        (void)durable.submit_trp(id, challenge,
                                 oracle.expected_bitstring(challenge));
      }
      durable.rotate();
      const auto challenge = durable.challenge_trp(id, rng);
      (void)durable.submit_trp(id, challenge,
                               oracle.expected_bitstring(challenge));
      // Power cut, then bit rot on the journal tail: the reopen below must
      // truncate the rotted record and re-checkpoint — an unclean recovery.
      backend.crash();
      backend.corrupt_durable(durable.journal_name(durable.generation()),
                              /*offset=*/5, /*bit=*/3);
    }
    {
      double now = 0.0;
      storage::DurabilityConfig dcfg;
      dcfg.metrics = &registry;
      dcfg.clock = [&now] { return now += 400.0; };
      const storage::DurableInventoryServer reopened(backend, dcfg);
      ASSERT_FALSE(reopened.recovery_report().clean());
      ASSERT_GT(reopened.recovery_report().truncated_bytes, 0u);
      ASSERT_EQ(reopened.server().group_count(), 1u);
    }
  }
};

[[nodiscard]] std::string golden_path(const std::string& file) {
  return std::string(RFIDMON_GOLDEN_DIR) + "/" + file;
}

[[nodiscard]] bool regen_requested() {
  const char* env = std::getenv("RFIDMON_REGEN_GOLDEN");
  return env != nullptr && std::string_view(env) == "1";
}

void compare_or_regen(const std::string& file, const std::string& actual) {
  const std::string path = golden_path(file);
  if (regen_requested()) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    ASSERT_TRUE(out.good());
    GTEST_LOG_(INFO) << "regenerated " << path;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden file " << path
      << " — run scripts/regen_golden.sh to create it";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "exposition drifted from " << path
      << "; if intentional, regenerate via scripts/regen_golden.sh and "
         "review the diff";
}

TEST(ObsGolden, PrometheusAndJsonMatchGoldenFiles) {
  Scenario scenario;
  scenario.run();
  if (HasFatalFailure()) return;
  const obs::Snapshot snapshot = scenario.registry.snapshot();
  compare_or_regen("metrics_prometheus.txt", obs::render_prometheus(snapshot));
  compare_or_regen("metrics_json.txt",
                   obs::render_json(snapshot, &scenario.session_log));
}

}  // namespace
