// Tests for the zero-estimator cardinality module.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "estimate/cardinality.h"
#include "radio/frame.h"
#include "tag/tag_set.h"
#include "util/random.h"
#include "util/stats.h"

namespace {

using rfid::estimate::estimate_cardinality;
using rfid::tag::TagSet;

TEST(Cardinality, ExactAtTheExpectedEmptyCount) {
  // If exactly f * e^{-n/f} slots are empty, the estimate is exactly n.
  const std::uint64_t f = 1000;
  const double n = 700.0;
  const auto n0 = static_cast<std::uint64_t>(std::llround(
      static_cast<double>(f) * std::exp(-n / static_cast<double>(f))));
  const auto est = estimate_cardinality(n0, f);
  EXPECT_NEAR(est.estimate, n, 5.0);
  EXPECT_FALSE(est.saturated);
  EXPECT_GT(est.std_error, 0.0);
}

TEST(Cardinality, AllEmptyMeansZeroTags) {
  const auto est = estimate_cardinality(512, 512);
  EXPECT_DOUBLE_EQ(est.estimate, 0.0);
  EXPECT_FALSE(est.saturated);
}

TEST(Cardinality, SaturatedFrameIsFlagged) {
  const auto est = estimate_cardinality(0, 256);
  EXPECT_TRUE(est.saturated);
  EXPECT_GT(est.estimate, 256.0);  // at least more tags than slots, roughly
}

TEST(Cardinality, RejectsBadInputs) {
  EXPECT_THROW((void)estimate_cardinality(5, 0), std::invalid_argument);
  EXPECT_THROW((void)estimate_cardinality(11, 10), std::invalid_argument);
  EXPECT_THROW((void)estimate_cardinality(rfid::bits::Bitstring{}),
               std::invalid_argument);
}

TEST(Cardinality, BitstringOverloadCountsZeros) {
  rfid::bits::Bitstring bs(100);
  for (std::size_t i = 0; i < 60; ++i) bs.set(i);
  const auto est = estimate_cardinality(bs);
  EXPECT_EQ(est.empty_slots, 40u);
  EXPECT_EQ(est.frame_size, 100u);
}

TEST(Cardinality, UnbiasedOverSimulatedFrames) {
  // End-to-end: simulate real TRP frames and check the estimator recovers
  // the true cardinality within a few standard errors.
  constexpr std::uint64_t kTags = 800;
  constexpr std::uint32_t kFrame = 1000;
  const rfid::hash::SlotHasher hasher;
  rfid::util::RunningStat estimates;
  for (int t = 0; t < 50; ++t) {
    rfid::util::Rng rng(rfid::util::derive_seed(20, static_cast<std::uint64_t>(t)));
    const TagSet set = TagSet::make_random(kTags, rng);
    const auto obs =
        rfid::radio::simulate_frame(set.tags(), hasher, rng(), kFrame, {}, rng);
    estimates.add(estimate_cardinality(obs.bitstring).estimate);
  }
  EXPECT_NEAR(estimates.mean(), static_cast<double>(kTags), 40.0);
}

TEST(Cardinality, StdErrorTracksEmpiricalSpread) {
  // The delta-method standard error should be the right order of magnitude
  // compared with the empirical spread across trials.
  constexpr std::uint64_t kTags = 500;
  constexpr std::uint32_t kFrame = 600;
  const rfid::hash::SlotHasher hasher;
  rfid::util::RunningStat estimates;
  double predicted_se = 0.0;
  for (int t = 0; t < 80; ++t) {
    rfid::util::Rng rng(rfid::util::derive_seed(21, static_cast<std::uint64_t>(t)));
    const TagSet set = TagSet::make_random(kTags, rng);
    const auto obs =
        rfid::radio::simulate_frame(set.tags(), hasher, rng(), kFrame, {}, rng);
    const auto est = estimate_cardinality(obs.bitstring);
    estimates.add(est.estimate);
    predicted_se = est.std_error;
  }
  EXPECT_GT(estimates.stddev(), predicted_se * 0.4);
  EXPECT_LT(estimates.stddev(), predicted_se * 2.5);
}

TEST(Cardinality, TheftShowsUpAsLowerEstimate) {
  // The triage behaviour used by InventoryServer alerts: estimates after a
  // large theft drop accordingly.
  rfid::util::Rng rng(22);
  TagSet set = TagSet::make_random(1000, rng);
  const rfid::hash::SlotHasher hasher;
  const std::uint64_t r = rng();
  const auto before =
      rfid::radio::simulate_frame(set.tags(), hasher, r, 1200, {}, rng);
  (void)set.steal_random(400, rng);
  const auto after =
      rfid::radio::simulate_frame(set.tags(), hasher, r, 1200, {}, rng);
  const double est_before = estimate_cardinality(before.bitstring).estimate;
  const double est_after = estimate_cardinality(after.bitstring).estimate;
  EXPECT_GT(est_before - est_after, 250.0);
}

}  // namespace
