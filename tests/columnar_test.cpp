// Property sweep for tag::ColumnarTagSet and the bulk kernels: lossless
// round-trip against tag::TagSet, and element-wise agreement between every
// bulk kernel and its scalar reference (Tag::trp_slot /
// Tag::utrp_receive_seed / Bitstring::set) across hash kinds, frame sizes
// (including frame_size = 1), population sizes straddling the 64-tag bitmap
// word boundary, and duplicate-slot collisions. Whole-session equivalence
// lives in tests/columnar_diff_test.cpp.
#include <gtest/gtest.h>

#include <vector>

#include "bitstring/bitstring.h"
#include "hash/slot_hash.h"
#include "tag/columnar.h"
#include "tag/tag_set.h"
#include "util/random.h"

namespace {

using namespace rfid;
using tag::ColumnarTagSet;

const hash::HashKind kAllKinds[] = {hash::HashKind::kFnv1a64,
                                    hash::HashKind::kMurmurFmix64,
                                    hash::HashKind::kSipHash24};

// Sizes straddling the packed-bitmap word boundary plus a bulk-scale one.
const std::size_t kSizes[] = {1, 2, 63, 64, 65, 100, 1000};

/// A population with non-trivial state: random counters, every third tag
/// silenced — exercises every column the round-trip must preserve.
tag::TagSet messy_population(std::size_t n, util::Rng& rng) {
  tag::TagSet set = tag::TagSet::make_random(n, rng);
  for (std::size_t i = 0; i < n; ++i) {
    set.at(i) = tag::Tag(set.at(i).id(), rng.below(1000));
    if (i % 3 == 0) set.at(i).silence();
  }
  return set;
}

TEST(ColumnarTagSet, RoundTripPreservesAllState) {
  util::Rng rng(7);
  for (const std::size_t n : kSizes) {
    const tag::TagSet original = messy_population(n, rng);
    const ColumnarTagSet columnar = ColumnarTagSet::from_tag_set(original);
    ASSERT_EQ(columnar.size(), n);
    const tag::TagSet back = columnar.to_tag_set();
    ASSERT_EQ(back.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(back.at(i).id(), original.at(i).id()) << "n=" << n << " i=" << i;
      EXPECT_EQ(back.at(i).counter(), original.at(i).counter());
      EXPECT_EQ(back.at(i).silenced(), original.at(i).silenced());
      EXPECT_EQ(columnar.slot_words()[i], original.at(i).id().slot_word());
    }
  }
}

TEST(ColumnarTagSet, FromIdsStartsFresh) {
  util::Rng rng(8);
  const tag::TagSet set = tag::TagSet::make_random(65, rng);
  const std::vector<tag::TagId> ids = set.ids();
  const ColumnarTagSet columnar = ColumnarTagSet::from_ids(ids);
  ASSERT_EQ(columnar.size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(columnar.id(i), ids[i]);
    EXPECT_EQ(columnar.counter(i), 0u);
    EXPECT_FALSE(columnar.silenced(i));
  }
}

TEST(ColumnarTagSet, SilenceBeginRoundAndCount) {
  util::Rng rng(9);
  const tag::TagSet set = tag::TagSet::make_random(130, rng);
  ColumnarTagSet columnar = ColumnarTagSet::from_tag_set(set);
  EXPECT_EQ(columnar.silenced_count(), 0u);
  columnar.silence(0);
  columnar.silence(63);
  columnar.silence(64);
  columnar.silence(129);
  EXPECT_EQ(columnar.silenced_count(), 4u);
  EXPECT_TRUE(columnar.silenced(63));
  EXPECT_TRUE(columnar.silenced(64));
  EXPECT_FALSE(columnar.silenced(1));
  columnar.begin_round();
  EXPECT_EQ(columnar.silenced_count(), 0u);
}

TEST(ColumnarTagSet, SliceMatchesSubrange) {
  util::Rng rng(10);
  const tag::TagSet set = messy_population(200, rng);
  const ColumnarTagSet whole = ColumnarTagSet::from_tag_set(set);
  // Slice offsets deliberately misaligned with the 64-bit bitmap words.
  const ColumnarTagSet part = whole.slice(70, 90);
  ASSERT_EQ(part.size(), 90u);
  for (std::size_t i = 0; i < part.size(); ++i) {
    EXPECT_EQ(part.id(i), whole.id(70 + i));
    EXPECT_EQ(part.counter(i), whole.counter(70 + i));
    EXPECT_EQ(part.silenced(i), whole.silenced(70 + i));
    EXPECT_EQ(part.slot_words()[i], whole.slot_words()[70 + i]);
  }
}

TEST(BulkKernels, TrpSlotsMatchScalarEverywhere) {
  util::Rng rng(11);
  const std::uint32_t frames[] = {1, 2, 7, 64, 101, 4096};
  for (const hash::HashKind kind : kAllKinds) {
    const hash::SlotHasher hasher(kind);
    for (const std::size_t n : kSizes) {
      const tag::TagSet set = tag::TagSet::make_random(n, rng);
      const ColumnarTagSet columnar = ColumnarTagSet::from_tag_set(set);
      for (const std::uint32_t f : frames) {
        const std::uint64_t r = rng();
        std::vector<std::uint32_t> slots(n);
        tag::bulk_trp_slots(hasher, columnar.slot_words(), r, f, slots);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(slots[i], set.at(i).trp_slot(hasher, r, f))
              << to_string(kind) << " n=" << n << " f=" << f << " i=" << i;
          ASSERT_LT(slots[i], f);
        }
      }
    }
  }
}

TEST(BulkKernels, UtrpReceiveSeedMatchesScalarAndSkipsSilenced) {
  util::Rng rng(12);
  for (const hash::HashKind kind : kAllKinds) {
    const hash::SlotHasher hasher(kind);
    for (const std::size_t n : kSizes) {
      tag::TagSet scalar = messy_population(n, rng);
      ColumnarTagSet columnar = ColumnarTagSet::from_tag_set(scalar);
      for (const std::uint32_t f : {1u, 33u, 512u}) {
        const std::uint64_t r = rng();
        // Scalar reference: only non-silenced tags receive the seed.
        std::vector<std::uint32_t> want(n, 0xdeadbeef);
        for (std::size_t i = 0; i < n; ++i) {
          if (!scalar.at(i).silenced()) {
            want[i] = scalar.at(i).utrp_receive_seed(hasher, r, f);
          }
        }
        std::vector<std::uint32_t> got(n, 0xdeadbeef);
        tag::bulk_utrp_receive_seed(hasher, columnar, r, f, got);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(got[i], want[i])
              << to_string(kind) << " n=" << n << " f=" << f << " i=" << i;
          ASSERT_EQ(columnar.counter(i), scalar.at(i).counter());
          ASSERT_EQ(columnar.silenced(i), scalar.at(i).silenced());
        }
      }
    }
  }
}

TEST(BulkKernels, FillFrameMatchesPerBitSetWithCollisions) {
  util::Rng rng(13);
  for (const std::uint32_t f : {1u, 2u, 64u, 65u, 1000u}) {
    // Heavily loaded frame: n >> f forces duplicate-slot collisions, n < f
    // leaves holes; both must OR identically to the scalar loop.
    for (const std::size_t n : {std::size_t{3}, std::size_t{2000}}) {
      std::vector<std::uint32_t> slots(n);
      for (auto& s : slots) s = static_cast<std::uint32_t>(rng.below(f));
      bits::Bitstring scalar(f);
      for (const std::uint32_t s : slots) scalar.set(s);
      bits::Bitstring bulk(f);
      tag::bulk_fill_frame(slots, bulk);
      ASSERT_EQ(bulk, scalar) << "f=" << f << " n=" << n;
    }
  }
}

TEST(BulkKernels, TrpFrameEqualsSlotsPlusFill) {
  util::Rng rng(14);
  for (const hash::HashKind kind : kAllKinds) {
    const hash::SlotHasher hasher(kind);
    for (const std::size_t n : kSizes) {
      const tag::TagSet set = tag::TagSet::make_random(n, rng);
      const ColumnarTagSet columnar = ColumnarTagSet::from_tag_set(set);
      for (const std::uint32_t f : {1u, 97u, 8192u}) {
        const std::uint64_t r = rng();
        const bits::Bitstring fused =
            tag::bulk_trp_frame(hasher, columnar.slot_words(), r, f);
        bits::Bitstring reference(f);
        for (std::size_t i = 0; i < n; ++i) {
          reference.set(set.at(i).trp_slot(hasher, r, f));
        }
        ASSERT_EQ(fused, reference) << to_string(kind) << " n=" << n
                                    << " f=" << f;
      }
    }
  }
}

}  // namespace
