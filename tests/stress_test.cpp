// Randomized stress / fuzz tests: long random operation sequences against
// the InventoryServer + snapshot machinery, plus adversarial byte fuzzing of
// the wire and snapshot parsers. Invariants are checked after every step;
// any crash, hang, or invariant break fails the test.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "protocol/provisioning.h"
#include "protocol/trp.h"
#include "protocol/utrp.h"
#include "server/inventory_server.h"
#include "server/snapshot.h"
#include "tag/tag_set.h"
#include "util/random.h"
#include "wire/messages.h"

namespace {

using namespace rfid;

TEST(Stress, RandomInventoryOperationSequences) {
  // 10 independent campaigns of 60 random operations each: enroll groups of
  // random size/protocol, run honest rounds, inject thefts, and continuously
  // check bookkeeping invariants.
  for (std::uint64_t campaign = 0; campaign < 10; ++campaign) {
    util::Rng rng(util::derive_seed(9001, campaign));
    server::InventoryServer inventory;
    struct LiveGroup {
      server::GroupId id;
      tag::TagSet tags;
      std::uint64_t thefts = 0;
      bool utrp = false;
    };
    std::vector<LiveGroup> groups;
    std::uint64_t expected_alert_lower_bound = 0;

    for (int op = 0; op < 60; ++op) {
      const std::uint64_t dice = rng.below(10);
      if (dice < 2 || groups.empty()) {
        // Enroll a new group.
        const std::size_t n = 20 + rng.below(180);
        const std::uint64_t m = rng.below(4);
        LiveGroup group;
        group.tags = tag::TagSet::make_random(n, rng);
        group.utrp = rng.chance(0.5);
        server::GroupConfig config;
        config.name = "g";  // two-step append dodges a GCC-12 -Wrestrict
        config.name += std::to_string(groups.size());  // false positive
        config.policy = {.tolerated_missing = m, .confidence = 0.9};
        config.protocol = group.utrp ? server::ProtocolKind::kUtrp
                                     : server::ProtocolKind::kTrp;
        group.id = inventory.enroll(group.tags, config);
        groups.push_back(std::move(group));
      } else if (dice < 4) {
        // Theft from a random group (possibly within tolerance).
        LiveGroup& group = groups[rng.below(groups.size())];
        if (group.tags.size() > 5) {
          const std::size_t count = 1 + rng.below(3);
          (void)group.tags.steal_random(count, rng);
          group.thefts += count;
        }
      } else {
        // Run a monitoring round on a random group.
        LiveGroup& group = groups[rng.below(groups.size())];
        // UTRP groups whose mirror diverged need a physical re-audit first;
        // emulate the operator doing that.
        if (group.utrp && inventory.needs_resync(group.id)) continue;
        if (!group.utrp) {
          const auto c = inventory.challenge_trp(group.id, rng);
          const protocol::TrpReader reader;
          const auto verdict = inventory.submit_trp(
              group.id, c, reader.scan(group.tags.tags(), c, rng));
          // Invariant: with zero thefts a round NEVER alarms.
          if (group.thefts == 0) {
            EXPECT_TRUE(verdict.intact);
          }
          if (!verdict.intact) ++expected_alert_lower_bound;
        } else {
          const auto c = inventory.challenge_utrp(group.id, rng);
          const protocol::UtrpReader reader;
          const auto scan = reader.scan(group.tags.tags(), c);
          const auto verdict =
              inventory.submit_utrp(group.id, c, scan.bitstring, true);
          if (group.thefts == 0) {
            EXPECT_TRUE(verdict.intact)
                << "campaign " << campaign << " op " << op;
          }
          if (!verdict.intact) ++expected_alert_lower_bound;
          group.tags.begin_round();
        }
      }
      // Global invariants after every operation.
      EXPECT_EQ(inventory.group_count(), groups.size());
      EXPECT_EQ(inventory.alerts().size(), expected_alert_lower_bound);
    }
  }
}

TEST(Stress, SnapshotFuzzNeverCrashes) {
  // Mutate valid snapshots with random byte flips/truncations: the parser
  // must either succeed (mutation hit a don't-care byte is impossible given
  // the checksum — so really: throw) or throw invalid_argument; anything
  // else (crash, logic_error, hang) fails.
  util::Rng rng(42);
  server::EnrolledGroup group;
  group.config.name = "fuzz";
  group.config.policy = {.tolerated_missing = 1, .confidence = 0.9};
  group.tags = tag::TagSet::make_random(12, rng);
  std::stringstream stream;
  server::save_snapshot(stream, {group});
  const std::string pristine = stream.str();

  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = pristine;
    const std::uint64_t mode = rng.below(3);
    if (mode == 0 && !mutated.empty()) {
      mutated[rng.below(mutated.size())] =
          static_cast<char>(rng.below(256));
    } else if (mode == 1) {
      mutated.resize(rng.below(mutated.size() + 1));
    } else {
      const std::size_t pos = rng.below(mutated.size() + 1);
      mutated = mutated.substr(0, pos) +
                static_cast<char>(rng.below(256)) + mutated.substr(pos);
    }
    std::istringstream in(mutated);
    try {
      const auto groups = server::load_snapshot(in);
      // Extremely unlikely but possible: mutation in trailing whitespace or
      // a no-op; accept only if the result round-trips to the same bytes.
      std::stringstream out;
      server::save_snapshot(out, groups);
      EXPECT_EQ(out.str(), pristine);
    } catch (const std::invalid_argument&) {
      // expected for essentially every mutation
    } catch (const std::out_of_range&) {
      // std::stoull on a mutated END line may throw this; acceptable reject
    }
  }
}

TEST(Stress, WireFuzzNeverCrashes) {
  util::Rng rng(43);
  bits::Bitstring bs(64);
  bs.set(3);
  const auto pristine = wire::encode(wire::BitstringReport{"g", 1, bs, 10.0});

  for (int trial = 0; trial < 2000; ++trial) {
    auto mutated = pristine;
    const std::uint64_t mode = rng.below(3);
    if (mode == 0 && !mutated.empty()) {
      mutated[rng.below(mutated.size())] =
          static_cast<std::byte>(rng.below(256));
    } else if (mode == 1) {
      mutated.resize(rng.below(mutated.size() + 1));
    } else if (!mutated.empty()) {
      mutated.push_back(static_cast<std::byte>(rng.below(256)));
    }
    try {
      (void)wire::decode_bitstring_report(mutated);
    } catch (const std::invalid_argument&) {
      // the only acceptable failure mode
    }
  }
}

TEST(Stress, ChallengeBookNeverDoubleVerifies) {
  util::Rng rng(44);
  const tag::TagSet set = tag::TagSet::make_random(100, rng);
  const protocol::TrpServer server(set.ids(),
                                   {.tolerated_missing = 2, .confidence = 0.9});
  protocol::TrpChallengeBook book(server, 20, rng);
  EXPECT_EQ(book.remaining(), 20u);

  const protocol::TrpReader reader;
  std::vector<std::size_t> order(20);
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  // Consume in random order with interleaved replay attempts.
  for (std::size_t step = 0; step < 20; ++step) {
    const std::size_t pick = step + rng.below(20 - step);
    std::swap(order[step], order[pick]);
    const std::size_t index = order[step];
    const auto bs = reader.scan(set.tags(), book.challenges()[index], rng);
    EXPECT_TRUE(book.verify_once(index, bs).intact);
    EXPECT_TRUE(book.used(index));
    EXPECT_THROW((void)book.verify_once(index, bs), std::invalid_argument);
    if (step > 0) {
      const std::size_t earlier = order[rng.below(step)];
      EXPECT_THROW((void)book.verify_once(earlier, bs), std::invalid_argument);
    }
  }
  EXPECT_EQ(book.remaining(), 0u);
}

TEST(Stress, MillionTagTrpBulkSmoke) {
  // The ROADMAP's million-tag scale target, end to end: enroll 10^6 tags,
  // run a bulk-mode TRP round honestly (must verify intact), then steal
  // beyond tolerance and run another (must alarm). The scalar path at this
  // size is what the columnar kernels exist to replace — only bulk mode is
  // exercised here; bit-identity is pinned at smaller n by
  // tests/columnar_diff_test.cpp.
  constexpr std::size_t kMillion = 1000000;
  util::Rng rng(777);
  tag::TagSet set = tag::TagSet::make_random(kMillion, rng);
  const protocol::TrpServer server(
      set.ids(), {.tolerated_missing = kMillion / 100, .confidence = 0.9});
  ASSERT_TRUE(server.bulk_mode());

  const auto c1 = server.issue_challenge(rng);
  const bits::Bitstring expected = server.expected_bitstring(c1);
  EXPECT_TRUE(server.verify(c1, expected).intact);

  // Steal 2x the tolerance: detection at alpha = 0.9 is probabilistic per
  // round, but the theft evidence is overwhelming at this margin.
  (void)set.steal_random(kMillion / 50, rng);
  const auto c2 = server.issue_challenge(rng);
  const protocol::TrpReader reader;
  EXPECT_FALSE(server.verify(c2, reader.scan(set.tags(), c2, rng)).intact);
}

TEST(Stress, ChallengeBookRejectsBadInputs) {
  util::Rng rng(45);
  const tag::TagSet set = tag::TagSet::make_random(10, rng);
  const protocol::TrpServer server(set.ids(),
                                   {.tolerated_missing = 1, .confidence = 0.9});
  EXPECT_THROW(protocol::TrpChallengeBook(server, 0, rng), std::invalid_argument);
  protocol::TrpChallengeBook book(server, 2, rng);
  EXPECT_THROW((void)book.verify_once(2, bits::Bitstring(1)),
               std::invalid_argument);
  EXPECT_THROW((void)book.used(5), std::invalid_argument);
}

}  // namespace
