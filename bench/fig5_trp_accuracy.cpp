// Figure 5 — "Accuracy of TRP with alpha = 0.95" (4 panels: m+1 = 6/11/21/31
// tags stolen).
//
// For each (n, m): size the frame with Eq. (2), steal exactly m+1 random
// tags (the adversary's hardest-to-detect choice, Theorem 2), run the full
// TRP round — real IDs, real hashing, bitstring comparison — and report the
// fraction of --trials rounds where the server notices. The paper's bars sit
// just above the alpha = 0.95 line (~0.94–0.97 with 1000-trial noise).
#include <cstdint>

#include "bench_common.h"
#include "protocol/trp.h"
#include "sim/trial_runner.h"
#include "tag/tag_set.h"
#include "util/table.h"

namespace {

using namespace rfid;

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_figure_options(argc, argv);
  const sim::TrialRunner runner(opt.threads);

  bench::banner("Figure 5: TRP detection probability when m+1 tags are stolen "
                "(alpha = " +
                util::format_double(opt.alpha, 2) + ", " +
                std::to_string(opt.trials) + " trials/point)");

  for (const std::uint64_t m : bench::tolerance_panels()) {
    util::Table table(
        {"n", "frame_f", "detect_prob", "wilson_lo", "wilson_hi", "above_alpha"});
    std::vector<double> xs;
    util::ChartSeries detect_series{"detection probability", {}, '*'};
    for (const std::uint64_t n : bench::tag_count_sweep(opt)) {
      if (m + 1 > n) continue;
      const protocol::MonitoringPolicy policy{
          .tolerated_missing = m, .confidence = opt.alpha, .model = opt.model};
      // The plan depends only on (n, m, alpha): solve once per point.
      const auto plan = math::optimize_trp_frame(n, m, opt.alpha, opt.model);
      const auto result = runner.run_boolean(
          opt.trials, util::derive_seed(opt.seed, n, m),
          [&](std::uint64_t, util::Rng& rng) {
            tag::TagSet set = tag::TagSet::make_random(n, rng);
            const protocol::TrpServer server(set.ids(), policy);
            (void)set.steal_random(m + 1, rng);
            const auto challenge = server.issue_challenge(rng);
            const protocol::TrpReader reader;
            const auto verdict =
                server.verify(challenge, reader.scan(set.tags(), challenge, rng));
            return !verdict.intact;
          });
      const auto ci = result.wilson();
      table.begin_row();
      table.add_cell(static_cast<long long>(n));
      table.add_cell(static_cast<long long>(plan.frame_size));
      table.add_cell(result.proportion(), 4);
      table.add_cell(ci.lo, 4);
      table.add_cell(ci.hi, 4);
      table.add_cell(std::string(result.proportion() > opt.alpha ? "yes" : "no"));
      xs.push_back(static_cast<double>(n));
      detect_series.ys.push_back(result.proportion());
    }
    std::cout << "--- Adversary steals m+1=" << (m + 1) << " tags ---\n";
    bench::emit(table, opt);
    bench::maybe_plot(opt, xs, {detect_series},
                      "detection vs n (steal " + std::to_string(m + 1) + ")",
                      opt.alpha);
  }
  return 0;
}
