// Per-slot evidence fusion for k overlapping readers covering one zone.
//
// Each reader runs an independent wire session against the same challenge
// stream and reports its own observed bitstring per round. Before the
// pigeonhole verdict is taken, the k observations are fused slot-by-slot
// with a trust-weighted vote: a slot reads busy when the trust mass voting
// busy strictly outweighs the trust mass voting empty. With equal trust
// this is the strict majority floor(valid/2)+1 that the generalized
// Theorem 1 sizing (math/fused_detection.h) is computed for, so a strict
// minority of faulty readers can never fake a busy slot into the fused
// string — honest radios lose replies but never phantom them.
//
// That one-directional error model is also what makes suspects cheap to
// spot: a reader outvoted busy-vs-empty (it claimed a reply in a slot the
// quorum heard as silent) cast a physically impossible vote, so a single
// phantom marks the round bad; a reader outvoted empty-vs-busy merely
// missed replies and is only bad when the miss fraction is persistent.
// TrustTracker folds both signals into per-reader trust decay and a
// suspect flag that the fleet surfaces and the daemon's per-reader
// quarantine tier consumes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bitstring/bitstring.h"
#include "math/fused_detection.h"

namespace rfid::fusion {

/// Zone-level reader-redundancy configuration. Defaults reproduce the
/// single-trustworthy-reader protocol exactly (k = 1, no noise budget).
struct FusionConfig {
  std::uint32_t readers = 1;  // k: concurrent sessions per zone
  /// Sessions that must complete for a zone round to commit; 0 selects the
  /// strict majority floor(k/2)+1. Rounds below quorum report degraded
  /// instead of voiding the zone.
  std::uint32_t quorum = 0;
  std::uint32_t assumed_faulty = 0;  // a: sizing's faulty-reader budget
  double slot_loss = 0.0;            // p: per-reader busy-slot miss prob
  double alert_budget = 0.025;       // false-alarm budget behind threshold T
  /// Per-round trust update: trust *= 1 - trust_decay * overruled_fraction,
  /// floored at min_trust so no reader's vote fully vanishes.
  double trust_decay = 0.5;
  double min_trust = 0.05;
  /// A round is bad for a reader when it cast a phantom busy vote, or was
  /// outvoted empty-vs-busy in more than suspect_overruled of the fused
  /// slots; suspect_after_rounds bad rounds flag the reader suspect.
  double suspect_overruled = 0.25;
  std::uint32_t suspect_after_rounds = 1;

  /// Sessions required per round: `quorum`, or floor(k/2)+1 when 0.
  [[nodiscard]] std::uint32_t effective_quorum() const noexcept {
    return quorum != 0 ? quorum : readers / 2 + 1;
  }

  /// The sizing-model view of this config (math/fused_detection.h).
  [[nodiscard]] math::FusedSizingParams sizing() const noexcept {
    return {readers, assumed_faulty, slot_loss, alert_budget};
  }

  /// Throws std::invalid_argument on inconsistent parameters (quorum above
  /// k or unable to outvote the faulty budget, probabilities out of range).
  void validate() const;
};

/// One fused round: the majority bitstring plus the vote accounting the
/// trust tracker and the fusion_* metrics consume.
struct FusedRound {
  bits::Bitstring fused;
  std::uint32_t valid_readers = 0;  // observations that actually voted
  std::uint64_t slots_fused = 0;    // frame slots put through the vote
  std::uint64_t votes_overruled = 0;  // reader-slot votes != fused bit
  /// Per reader (index-aligned with the input span; zero for readers with
  /// no observation this round): votes overruled in each direction.
  std::vector<std::uint64_t> phantom_busy;   // voted busy, fused empty
  std::vector<std::uint64_t> missed_busy;    // voted empty, fused busy
};

/// Trust-weighted per-slot vote over the valid observations. `observed[i]`
/// may be null (reader i contributed nothing this round); all non-null
/// bitstrings must share one size. `trust` must hold one weight per reader.
/// At least one observation must be valid. Deterministic: accumulation is
/// in reader-index order on identical inputs.
[[nodiscard]] FusedRound fuse_round(
    std::span<const bits::Bitstring* const> observed,
    std::span<const double> trust);

/// Per-reader trust and suspicion state, fed one FusedRound at a time.
class TrustTracker {
 public:
  explicit TrustTracker(const FusionConfig& config);

  /// Current weights, index-aligned with the zone's readers.
  [[nodiscard]] const std::vector<double>& trust() const noexcept {
    return trust_;
  }

  /// Folds one fused round into trust decay and bad-round accounting.
  void observe_round(const FusedRound& round);

  [[nodiscard]] bool suspect(std::uint32_t reader) const;
  [[nodiscard]] std::uint32_t suspect_count() const;
  [[nodiscard]] std::uint64_t overruled_votes(std::uint32_t reader) const;

 private:
  FusionConfig config_;
  std::vector<double> trust_;
  std::vector<std::uint32_t> bad_rounds_;
  std::vector<std::uint64_t> overruled_;
};

}  // namespace rfid::fusion
